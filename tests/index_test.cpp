#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "index/bbio_tree.h"
#include "index/compact_interval_tree.h"
#include "index/interval_tree.h"
#include "index/range_partition.h"
#include "index/span_space_lattice.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "util/rng.h"
#include "util/stats.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

// ---------------------------------------------------------------------------
// Test scaffolding: a metacell source with fully controlled intervals.
// ---------------------------------------------------------------------------

/// Serves synthetic metacells whose records are tiny (k=2 -> 13 bytes for
/// u8) and whose vmin field matches an arbitrary prescribed interval, so
/// index structures can be driven with exact span-space distributions.
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(std::vector<MetacellInfo> infos)
      : infos_sorted_(std::move(infos)),
        geometry_({1026, 3, 3}, 2) {  // 1025x2x2 cells -> 2050 ids available
    std::sort(infos_sorted_.begin(), infos_sorted_.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                return a.id < b.id;
              });
    for (const auto& info : infos_sorted_) by_id_[info.id] = info.interval;
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return infos_sorted_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    // 2^3 payload samples realizing exactly (vmin, vmax).
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::vector<MetacellInfo> infos_sorted_;
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;  // culled metacells never reach the index
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

std::set<std::uint32_t> brute_force(const std::vector<MetacellInfo>& infos,
                                    core::ValueKey isovalue) {
  std::set<std::uint32_t> ids;
  for (const auto& info : infos) {
    if (info.interval.stabs(isovalue)) ids.insert(info.id);
  }
  return ids;
}

std::uint32_t record_id(std::span<const std::byte> record) {
  io::ByteReader reader(record);
  return reader.get<std::uint32_t>();
}

/// Builds the striped layout over `p` in-memory devices.
struct Built {
  std::vector<std::unique_ptr<io::MemoryBlockDevice>> devices;
  CompactTreeBuilder::Result result;
};

Built build_striped(const std::vector<MetacellInfo>& infos, std::size_t p,
                    const FakeSource& source) {
  Built built;
  std::vector<io::BlockDevice*> pointers;
  for (std::size_t i = 0; i < p; ++i) {
    built.devices.push_back(std::make_unique<io::MemoryBlockDevice>(512));
    pointers.push_back(built.devices.back().get());
  }
  built.result = CompactTreeBuilder::build(infos, source, pointers);
  return built;
}

std::set<std::uint32_t> query_all_nodes(Built& built,
                                        core::ValueKey isovalue,
                                        std::vector<QueryStats>* stats_out =
                                            nullptr) {
  std::set<std::uint32_t> ids;
  for (std::size_t d = 0; d < built.devices.size(); ++d) {
    const QueryStats stats = built.result.trees[d].query(
        isovalue, *built.devices[d], [&](std::span<const std::byte> record) {
          const auto [it, inserted] = ids.insert(record_id(record));
          EXPECT_TRUE(inserted) << "metacell delivered twice";
        });
    if (stats_out != nullptr) stats_out->push_back(stats);
  }
  return ids;
}

// ---------------------------------------------------------------------------
// CompactIntervalTree: correctness
// ---------------------------------------------------------------------------

struct TreeCase {
  std::size_t intervals;
  std::uint32_t alphabet;
  std::size_t nodes;
};

class CompactTreeCorrectness : public ::testing::TestWithParam<TreeCase> {};

TEST_P(CompactTreeCorrectness, MatchesBruteForceEverywhere) {
  const TreeCase param = GetParam();
  const auto infos =
      random_intervals(param.intervals, param.alphabet, /*seed=*/777);
  const FakeSource source(infos);
  Built built = build_striped(infos, param.nodes, source);

  // Every value of the alphabet, plus sentinels outside the range.
  for (std::uint32_t v = 0; v <= param.alphabet + 1; ++v) {
    const auto isovalue = static_cast<core::ValueKey>(v);
    const auto expected = brute_force(infos, isovalue);
    const auto actual = query_all_nodes(built, isovalue);
    EXPECT_EQ(actual, expected) << "isovalue " << v;
  }
  EXPECT_EQ(query_all_nodes(built, -5.0f).size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompactTreeCorrectness,
    ::testing::Values(TreeCase{1, 4, 1}, TreeCase{10, 4, 1},
                      TreeCase{100, 8, 1}, TreeCase{500, 16, 1},
                      TreeCase{500, 200, 1}, TreeCase{1000, 16, 2},
                      TreeCase{1000, 16, 4}, TreeCase{1000, 200, 8},
                      TreeCase{2000, 32, 3}, TreeCase{777, 7, 5}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.intervals) + "_a" +
             std::to_string(info.param.alphabet) + "_p" +
             std::to_string(info.param.nodes);
    });

TEST(CompactTree, EmptyInputQueriesCleanly) {
  const FakeSource source({});
  Built built = build_striped({}, 2, source);
  EXPECT_EQ(built.result.trees[0].nodes().size(), 0u);
  // Trees with no nodes have no record size; plan is empty and execute on
  // an empty plan is rejected as a logic error.
  EXPECT_TRUE(built.result.trees[0].plan(5.0f).scans.empty());
}

TEST(CompactTree, AllIdenticalIntervals) {
  std::vector<MetacellInfo> infos;
  for (std::uint32_t i = 0; i < 50; ++i) infos.push_back({i, {10, 20}});
  const FakeSource source(infos);
  Built built = build_striped(infos, 3, source);

  EXPECT_EQ(query_all_nodes(built, 15.0f).size(), 50u);
  EXPECT_EQ(query_all_nodes(built, 10.0f).size(), 50u);
  EXPECT_EQ(query_all_nodes(built, 20.0f).size(), 50u);
  EXPECT_EQ(query_all_nodes(built, 9.0f).size(), 0u);
  EXPECT_EQ(query_all_nodes(built, 21.0f).size(), 0u);
  // One brick only: all intervals share (vmin, vmax).
  EXPECT_EQ(built.result.bricks_written, 1u);
}

TEST(CompactTree, NestedIntervalsCase1And2) {
  // Intervals nested around 50; exercises both walk directions explicitly.
  std::vector<MetacellInfo> infos;
  for (std::uint32_t i = 0; i < 20; ++i) {
    infos.push_back({i, {static_cast<core::ValueKey>(50 - i - 1),
                         static_cast<core::ValueKey>(50 + i + 1)}});
  }
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  for (const float isovalue : {30.0f, 45.0f, 50.0f, 55.0f, 70.0f}) {
    EXPECT_EQ(query_all_nodes(built, isovalue),
              brute_force(infos, isovalue));
  }
}

// ---------------------------------------------------------------------------
// CompactIntervalTree: structural properties
// ---------------------------------------------------------------------------

TEST(CompactTree, EntryCountIsNLogNBounded) {
  const auto infos = random_intervals(5000, 128, 31);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  const CompactIntervalTree& tree = built.result.trees[0];

  // Count distinct endpoints n.
  std::set<core::ValueKey> endpoints;
  for (const auto& info : infos) {
    endpoints.insert(info.interval.vmin);
    endpoints.insert(info.interval.vmax);
  }
  const std::size_t n = endpoints.size();
  // <= n/2 entries per level, height <= ceil(log2 n) + 1.
  EXPECT_LE(tree.entry_count(), (n / 2 + 1) * tree.height());
  // And dramatically fewer entries than intervals in this N >> n regime.
  EXPECT_LT(tree.entry_count(), infos.size() / 2);
}

TEST(CompactTree, HeightIsLogarithmic) {
  const auto infos = random_intervals(4000, 256, 5);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  // n <= 256 endpoints -> height <= 9 (log2 256 + 1).
  EXPECT_LE(built.result.trees[0].height(), 9u);
}

TEST(CompactTree, BricksAreSortedWithinNodes) {
  const auto infos = random_intervals(1000, 32, 9);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  const CompactIntervalTree& tree = built.result.trees[0];
  for (const CompactNode& node : tree.nodes()) {
    for (std::uint32_t b = node.brick_begin + 1; b < node.brick_end; ++b) {
      EXPECT_GT(tree.bricks()[b - 1].vmax, tree.bricks()[b].vmax);
    }
  }
}

TEST(CompactTree, NodeBricksAreContiguousOnDisk) {
  // Case-1 reads are sequential because a node's bricks are laid out back
  // to back in plan order.
  const auto infos = random_intervals(800, 24, 13);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  const CompactIntervalTree& tree = built.result.trees[0];
  const std::size_t record = tree.record_size();
  for (const CompactNode& node : tree.nodes()) {
    for (std::uint32_t b = node.brick_begin + 1; b < node.brick_end; ++b) {
      const BrickEntry& prev = tree.bricks()[b - 1];
      EXPECT_EQ(prev.offset + prev.count * record, tree.bricks()[b].offset);
    }
  }
}

TEST(CompactTree, PrefixOvershootIsAtMostOnePerBrick) {
  const auto infos = random_intervals(3000, 64, 17);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  for (const float isovalue : {5.0f, 20.0f, 33.0f, 50.0f, 63.0f}) {
    std::vector<QueryStats> stats;
    query_all_nodes(built, isovalue, &stats);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_LE(stats[0].records_fetched - stats[0].active_metacells,
              stats[0].bricks_scanned);
  }
}

TEST(CompactTree, IoIsProportionalToOutput) {
  // Blocks read <= output blocks + O(1) per scanned brick (the T/B term of
  // the I/O bound plus bounded per-brick overhead).
  const auto infos = random_intervals(4000, 64, 23);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  io::MemoryBlockDevice& device = *built.devices[0];
  const CompactIntervalTree& tree = built.result.trees[0];

  for (const float isovalue : {10.0f, 32.0f, 55.0f}) {
    device.reset_stats();
    std::uint64_t active = 0;
    const QueryStats stats =
        tree.query(isovalue, device, [&](auto) { ++active; });
    const std::uint64_t output_bytes = active * tree.record_size();
    const std::uint64_t output_blocks =
        (output_bytes + device.block_size() - 1) / device.block_size();
    // Batched reads re-touch at most a couple of boundary blocks per brick.
    EXPECT_LE(device.stats().blocks_read,
              2 * output_blocks + 8 * stats.bricks_scanned + 8);
  }
}

TEST(CompactTree, PersistenceRoundTrip) {
  const auto infos = random_intervals(600, 40, 29);
  const FakeSource source(infos);
  Built built = build_striped(infos, 2, source);
  for (std::size_t d = 0; d < 2; ++d) {
    const CompactIntervalTree& original = built.result.trees[d];
    const auto bytes = original.to_bytes();
    const CompactIntervalTree restored =
        CompactIntervalTree::from_bytes(bytes);
    EXPECT_EQ(restored.root(), original.root());
    EXPECT_EQ(restored.nodes().size(), original.nodes().size());
    EXPECT_EQ(restored.bricks().size(), original.bricks().size());
    EXPECT_EQ(restored.record_size(), original.record_size());
    EXPECT_EQ(restored.total_metacells(), original.total_metacells());

    // Restored tree answers queries identically.
    for (const float isovalue : {7.0f, 21.0f, 39.0f}) {
      std::set<std::uint32_t> a;
      std::set<std::uint32_t> b;
      original.query(isovalue, *built.devices[d],
                     [&](auto record) { a.insert(record_id(record)); });
      restored.query(isovalue, *built.devices[d],
                     [&](auto record) { b.insert(record_id(record)); });
      EXPECT_EQ(a, b);
    }
  }
}

TEST(CompactTree, PersistenceRejectsCorruptInput) {
  const auto infos = random_intervals(100, 16, 3);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  auto bytes = built.result.trees[0].to_bytes();
  bytes[0] = std::byte{0x00};  // break the magic
  EXPECT_THROW(CompactIntervalTree::from_bytes(bytes), std::runtime_error);
  EXPECT_THROW(CompactIntervalTree::from_bytes(std::vector<std::byte>(3)),
               std::out_of_range);
}

TEST(CompactTree, BuilderRejectsBadDevices) {
  const FakeSource source({});
  EXPECT_THROW(CompactTreeBuilder::build({}, source, {}),
               std::invalid_argument);
  std::vector<io::BlockDevice*> with_null{nullptr};
  EXPECT_THROW(CompactTreeBuilder::build({}, source, with_null),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Striping: the provable load-balance property (paper Section 5.1)
// ---------------------------------------------------------------------------

TEST(Striping, PerNodeCountsDifferByAtMostBricksScanned) {
  const auto infos = random_intervals(6000, 48, 41);
  for (const std::size_t p : {2u, 4u, 8u}) {
    const FakeSource source(infos);
    Built built = build_striped(infos, p, source);
    for (const float isovalue : {8.0f, 24.0f, 40.0f}) {
      std::vector<std::uint64_t> per_node;
      std::uint64_t max_bricks = 0;
      for (std::size_t d = 0; d < p; ++d) {
        const QueryStats stats = built.result.trees[d].query(
            isovalue, *built.devices[d], [](auto) {});
        per_node.push_back(stats.active_metacells);
        max_bricks = std::max(max_bricks, stats.bricks_scanned);
      }
      const auto [lo, hi] =
          std::minmax_element(per_node.begin(), per_node.end());
      // Round-robin striping puts each brick's active prefix within 1 of
      // even across nodes; summed over scanned bricks that bounds the gap.
      EXPECT_LE(*hi - *lo, max_bricks + 1)
          << "p=" << p << " iso=" << isovalue;
    }
  }
}

TEST(Striping, TotalWorkMatchesSerial) {
  // Total metacells written and total active across nodes equal the serial
  // case: parallelization adds no work (paper's claim).
  const auto infos = random_intervals(2500, 32, 47);
  const FakeSource source(infos);
  Built serial = build_striped(infos, 1, source);
  Built parallel = build_striped(infos, 4, source);
  EXPECT_EQ(serial.result.metacells_written,
            parallel.result.metacells_written);
  EXPECT_EQ(serial.result.bytes_written, parallel.result.bytes_written);

  for (const float isovalue : {10.0f, 25.0f}) {
    EXPECT_EQ(query_all_nodes(serial, isovalue),
              query_all_nodes(parallel, isovalue));
  }
}

TEST(Striping, ImbalanceStaysSmall) {
  const auto infos = random_intervals(20000, 100, 53);
  const FakeSource source(infos);
  Built built = build_striped(infos, 4, source);
  for (const float isovalue : {20.0f, 50.0f, 80.0f}) {
    std::vector<std::uint64_t> per_node;
    for (std::size_t d = 0; d < 4; ++d) {
      const QueryStats stats = built.result.trees[d].query(
          isovalue, *built.devices[d], [](auto) {});
      per_node.push_back(stats.active_metacells);
    }
    EXPECT_LT(util::imbalance(per_node), 0.05) << "iso=" << isovalue;
  }
}

// ---------------------------------------------------------------------------
// Standard interval tree baseline
// ---------------------------------------------------------------------------

class IntervalTreeCorrectness
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {
};

TEST_P(IntervalTreeCorrectness, MatchesBruteForce) {
  const auto [count, alphabet] = GetParam();
  const auto infos = random_intervals(count, alphabet, 61);
  const IntervalTree tree(infos);
  for (std::uint32_t v = 0; v <= alphabet; ++v) {
    const auto isovalue = static_cast<core::ValueKey>(v);
    const auto ids = tree.query(isovalue);
    const std::set<std::uint32_t> got(ids.begin(), ids.end());
    EXPECT_EQ(got.size(), ids.size()) << "duplicate ids";
    EXPECT_EQ(got, brute_force(infos, isovalue)) << "isovalue " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalTreeCorrectness,
                         ::testing::Values(std::pair{std::size_t{1}, 4u},
                                           std::pair{std::size_t{50}, 8u},
                                           std::pair{std::size_t{500}, 16u},
                                           std::pair{std::size_t{1500}, 150u}));

TEST(IntervalTreeBaseline, EntryCountIsTwiceIntervals) {
  const auto infos = random_intervals(1234, 32, 67);
  const IntervalTree tree(infos);
  EXPECT_EQ(tree.entry_count(), 2 * infos.size());
}

TEST(IntervalTreeBaseline, OutputSensitiveExamination) {
  const auto infos = random_intervals(2000, 64, 71);
  const IntervalTree tree(infos);
  const auto ids = tree.query(33.0f);
  // Overshoot <= 1 entry per visited node; height bounds visited nodes.
  EXPECT_LE(tree.last_entries_examined(), ids.size() + tree.height());
}

TEST(IndexSizes, CompactBeatsStandardWhenNExceedsN) {
  // u8-style regime: huge N, tiny n — Table 1's headline comparison.
  const auto infos = random_intervals(50000, 64, 73);
  const FakeSource source(infos);
  Built built = build_striped(infos, 1, source);
  const IntervalTree standard(infos);
  EXPECT_LT(built.result.trees[0].entry_count() * 10,
            standard.entry_count());
  EXPECT_LT(built.result.trees[0].size_bytes(), standard.size_bytes() / 10);
}

// ---------------------------------------------------------------------------
// Span-space lattice baseline
// ---------------------------------------------------------------------------

TEST(Lattice, MatchesBruteForce) {
  const auto infos = random_intervals(1500, 100, 79);
  const SpanSpaceLattice lattice(infos, 32);
  for (const float isovalue : {0.0f, 13.0f, 50.0f, 99.0f}) {
    const auto ids = lattice.query(isovalue);
    const std::set<std::uint32_t> got(ids.begin(), ids.end());
    EXPECT_EQ(got, brute_force(infos, isovalue));
  }
}

TEST(Lattice, CountersAreConsistent) {
  const auto infos = random_intervals(1500, 100, 83);
  const SpanSpaceLattice lattice(infos, 32);
  SpanSpaceLattice::QueryCounters counters;
  const auto ids = lattice.query(42.0f, &counters);
  EXPECT_EQ(counters.reported, ids.size());
  EXPECT_LE(counters.examined, infos.size());
  // Only boundary buckets are examined individually; the interior is free.
  EXPECT_LT(counters.examined, counters.reported + infos.size() / 4);
}

TEST(Lattice, ResolutionOneDegeneratesToScan) {
  const auto infos = random_intervals(200, 16, 89);
  const SpanSpaceLattice lattice(infos, 1);
  for (const float isovalue : {3.0f, 9.0f}) {
    const auto ids = lattice.query(isovalue);
    EXPECT_EQ(std::set<std::uint32_t>(ids.begin(), ids.end()),
              brute_force(infos, isovalue));
  }
}

TEST(Lattice, RejectsZeroResolution) {
  EXPECT_THROW(SpanSpaceLattice({}, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BBIO external tree + id-order store baseline
// ---------------------------------------------------------------------------

TEST(Bbio, MatchesBruteForce) {
  const auto infos = random_intervals(1200, 48, 97);
  io::MemoryBlockDevice index_device(512);
  const BbioTree tree(infos, index_device);
  for (const float isovalue : {5.0f, 24.0f, 47.0f}) {
    const auto ids = tree.query(isovalue, index_device);
    EXPECT_EQ(std::set<std::uint32_t>(ids.begin(), ids.end()),
              brute_force(infos, isovalue));
  }
}

TEST(Bbio, IndexListsLiveOnDisk) {
  const auto infos = random_intervals(1000, 32, 101);
  io::MemoryBlockDevice index_device(512);
  const BbioTree tree(infos, index_device);
  EXPECT_EQ(tree.on_disk_bytes(),
            2 * infos.size() * sizeof(BbioTree::ListEntry));
  EXPECT_EQ(index_device.size(), tree.on_disk_bytes());
  // Querying pays index I/O — the cost the compact tree avoids entirely.
  index_device.reset_stats();
  BbioTree::QueryStats stats;
  tree.query(16.0f, index_device, &stats);
  EXPECT_GT(index_device.stats().read_ops, 0u);
  EXPECT_GE(stats.index_entries_read, stats.active_metacells);
}

TEST(IdStore, ReadsRequestedRecords) {
  const auto infos = random_intervals(300, 20, 103);
  const FakeSource source(infos);
  io::MemoryBlockDevice device(512);
  const IdOrderStore store(infos, source, device);

  std::vector<std::uint32_t> want{infos[5].id, infos[100].id, infos[250].id};
  std::set<std::uint32_t> got;
  store.read(want, device, [&](std::span<const std::byte> record) {
    got.insert(record_id(record));
  });
  EXPECT_EQ(got, std::set<std::uint32_t>(want.begin(), want.end()));
}

TEST(IdStore, UnknownIdThrows) {
  const auto infos = random_intervals(10, 8, 107);
  const FakeSource source(infos);
  io::MemoryBlockDevice device(512);
  const IdOrderStore store(infos, source, device);
  EXPECT_THROW(store.read({9999}, device, [](auto) {}), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Range-partition distribution baseline
// ---------------------------------------------------------------------------

TEST(RangePartitionTest, ConservesActiveCells) {
  const auto infos = random_intervals(3000, 64, 109);
  const RangePartition partition(infos, 4);
  for (const float isovalue : {10.0f, 32.0f, 60.0f}) {
    const auto per_node = partition.active_per_processor(infos, isovalue);
    std::uint64_t total = 0;
    for (const auto count : per_node) total += count;
    EXPECT_EQ(total, brute_force(infos, isovalue).size());
  }
}

TEST(RangePartitionTest, CanBeBadlyUnbalanced) {
  // All intervals identical: they map to ONE matrix entry, hence one
  // processor — the paper's criticism of range-space partitioning.
  std::vector<MetacellInfo> infos;
  for (std::uint32_t i = 0; i < 1000; ++i) infos.push_back({i, {10, 50}});
  const RangePartition partition(infos, 4);
  const auto per_node = partition.active_per_processor(infos, 30.0f);
  EXPECT_GT(util::imbalance(per_node), 2.5);  // ~all on one node
}

}  // namespace
}  // namespace oociso::index
