#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/temp_dir.h"
#include "util/timer.h"

namespace oociso::util {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Xoshiro256 a(7, 0);
  Xoshiro256 b(7, 1);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.bounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, BoundedZeroIsZero) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.bounded(0), 0u);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(Imbalance, PerfectBalanceIsZero) {
  const std::vector<std::uint64_t> work{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(imbalance(work), 0.0);
}

TEST(Imbalance, SingleLoadedNode) {
  const std::vector<std::uint64_t> work{400, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance(work), 3.0);  // max 400, mean 100
}

TEST(Imbalance, EmptyAndZeroAreZero) {
  EXPECT_DOUBLE_EQ(imbalance(std::vector<std::uint64_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance(std::vector<std::uint64_t>{0, 0}), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

// ---------------------------------------------------------------------------
// Table formatting
// ---------------------------------------------------------------------------

TEST(Table, RendersAllCells) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string text = t.render();
  EXPECT_NE(text.find("333"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"x"});
  t.add_row({"a,b"});
  EXPECT_NE(t.render_csv().find("\"a,b\""), std::string::npos);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(human_bytes(3ull << 30), "3.00 GiB");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(5592802), "5,592,802");
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(0.0005), "500.0 us");
  EXPECT_EQ(human_seconds(0.25), "250.0 ms");
  EXPECT_EQ(human_seconds(3.5), "3.50 s");
  EXPECT_EQ(human_seconds(600.0), "10.0 min");
}

// ---------------------------------------------------------------------------
// Cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--iso=70", "--nodes", "4", "--verbose"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("iso", 0), 70);
  EXPECT_EQ(args.get_int("nodes", 0), 4);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("missing", 9), 9);
}

TEST(Cli, PositionalAndDoubleDash) {
  const char* argv[] = {"prog", "input.dat", "--", "--not-a-flag"};
  const CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.dat");
  EXPECT_EQ(args.positional()[1], "--not-a-flag");
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--iso=abc"};
  const CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("iso", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("iso", 0), std::invalid_argument);
}

TEST(Cli, ParsesDoublesAndBools) {
  const char* argv[] = {"prog", "--rate=3.5", "--flag=off"};
  const CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 3.5);
  EXPECT_FALSE(args.get_bool("flag", true));
}

// ---------------------------------------------------------------------------
// TempDir / timers
// ---------------------------------------------------------------------------

TEST(TempDir, CreatesAndRemoves) {
  std::filesystem::path where;
  {
    TempDir dir("oociso-test");
    where = dir.path();
    EXPECT_TRUE(std::filesystem::exists(where));
    std::ofstream(dir.file("x.txt")) << "hello";
    EXPECT_TRUE(std::filesystem::exists(where / "x.txt"));
  }
  EXPECT_FALSE(std::filesystem::exists(where));
}

TEST(TempDir, UniquePaths) {
  TempDir a("same-prefix");
  TempDir b("same-prefix");
  EXPECT_NE(a.path(), b.path());
}

TEST(Timers, PhaseAccumulates) {
  PhaseTimer phase;
  phase.add(0.5);
  phase.add(0.25);
  EXPECT_DOUBLE_EQ(phase.seconds(), 0.75);
  phase.reset();
  EXPECT_DOUBLE_EQ(phase.seconds(), 0.0);
}

TEST(Timers, WallTimerMonotone) {
  WallTimer timer;
  const double t1 = timer.seconds();
  const double t2 = timer.seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

}  // namespace
}  // namespace oociso::util
