// Plan-aware I/O scheduling (index/plan_scheduler.h): unit tests for
// schedule_plan and end-to-end equivalence/efficiency tests through the
// RetrievalStream. The contract under test: the coalesced schedule delivers
// exactly the records and QueryStats of the legacy per-brick execution
// while performing measurably fewer device read operations and seeks, and
// never bridges a gap it cannot CRC-verify when verification is on.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/plan_scheduler.h"
#include "index/retrieval_stream.h"
#include "io/fault_injection.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

/// Same controlled source as the index/stream tests: tiny u8 records whose
/// vmin/vmax match a prescribed interval exactly.
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(std::vector<MetacellInfo> infos)
      : infos_sorted_(std::move(infos)), geometry_({1026, 3, 3}, 2) {
    std::sort(infos_sorted_.begin(), infos_sorted_.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                return a.id < b.id;
              });
    for (const auto& info : infos_sorted_) by_id_[info.id] = info.interval;
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return infos_sorted_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::vector<MetacellInfo> infos_sorted_;
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

struct Built {
  std::unique_ptr<io::MemoryBlockDevice> device;
  CompactIntervalTree tree;
};

Built build_one(const std::vector<MetacellInfo>& infos,
                std::uint64_t readahead_blocks = 12) {
  Built built;
  built.device = std::make_unique<io::MemoryBlockDevice>(512, readahead_blocks);
  const FakeSource source(infos);
  io::BlockDevice* pointer = built.device.get();
  auto result = CompactTreeBuilder::build(infos, source, {&pointer, 1});
  built.tree = std::move(result.trees[0]);
  return built;
}

std::uint32_t record_id(std::span<const std::byte> record) {
  io::ByteReader reader(record);
  return reader.get<std::uint32_t>();
}

/// Everything one streamed query produced, for A/B comparison.
struct RunResult {
  std::vector<std::uint32_t> ids;  ///< delivered records, sorted
  QueryStats stats;
  io::IoStats io;
  RetrievalFaults faults;
  std::uint64_t sequential_reads = 0;
  std::uint64_t coalesced_scans = 0;
};

RunResult run_query(const CompactIntervalTree& tree, core::ValueKey isovalue,
                    io::BlockDevice& device, const RetrievalOptions& options) {
  const io::IoStats before = device.stats();
  RetrievalStream stream = open_stream(tree, isovalue, device, options);
  RunResult result;
  while (std::optional<RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      result.ids.push_back(record_id(batch->record(r)));
    }
  }
  std::sort(result.ids.begin(), result.ids.end());
  result.stats = stream.stats();
  result.io = device.stats().since(before);
  result.faults = stream.faults();
  result.sequential_reads = stream.schedule().sequential_reads;
  result.coalesced_scans = stream.schedule().coalesced_scans;
  return result;
}

std::vector<std::uint32_t> brute_force(const std::vector<MetacellInfo>& infos,
                                       core::ValueKey isovalue) {
  std::vector<std::uint32_t> ids;
  for (const auto& info : infos) {
    if (info.interval.stabs(isovalue)) ids.push_back(info.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---------------------------------------------------------------------------
// schedule_plan unit cases (synthetic plans, no device)
// ---------------------------------------------------------------------------

ScheduleParams base_params() {
  ScheduleParams params;
  params.record_size = 16;
  params.chunk_records = 4;
  params.max_read_records = 64;
  params.max_gap_bytes = 512;
  return params;
}

BrickScan full_scan(std::uint64_t offset, std::uint32_t count) {
  BrickScan scan;
  scan.offset = offset;
  scan.metacell_count = count;
  scan.full = true;
  return scan;
}

TEST(PlanScheduler, RejectsBadPackingParameters) {
  QueryPlan plan;
  plan.scans.push_back(full_scan(0, 4));
  ScheduleParams params = base_params();
  params.record_size = 0;
  EXPECT_THROW(schedule_plan(plan, params), std::logic_error);
}

TEST(PlanScheduler, EmptyPlanSchedulesNothing) {
  const ScheduledPlan schedule = schedule_plan(QueryPlan{}, base_params());
  EXPECT_TRUE(schedule.items.empty());
  EXPECT_EQ(schedule.sequential_reads, 0u);
}

TEST(PlanScheduler, LegacyModePreservesPlanOrder) {
  QueryPlan plan;
  plan.scans.push_back(full_scan(512, 8));
  plan.scans.push_back(full_scan(0, 8));  // earlier on disk, later in plan
  BrickScan prefix = full_scan(256, 8);
  prefix.full = false;
  plan.scans.push_back(prefix);

  ScheduleParams params = base_params();
  params.coalesce = false;
  const ScheduledPlan schedule = schedule_plan(plan, params);

  ASSERT_EQ(schedule.items.size(), 3u);
  EXPECT_FALSE(schedule.items[0].is_prefix());
  EXPECT_EQ(schedule.items[0].read.offset, 512u);
  EXPECT_EQ(schedule.items[1].read.offset, 0u);
  EXPECT_TRUE(schedule.items[2].is_prefix());
  EXPECT_EQ(schedule.items[2].prefix_scan, 2);
  EXPECT_EQ(schedule.coalesced_scans, 0u);
  EXPECT_EQ(schedule.bridged_gap_bytes, 0u);
}

TEST(PlanScheduler, CoalescesAdjacentBricksIntoOneRead) {
  QueryPlan plan;
  plan.scans.push_back(full_scan(1000 + 8 * 16, 8));  // plan order != disk order
  plan.scans.push_back(full_scan(1000, 8));

  const ScheduledPlan schedule = schedule_plan(plan, base_params());

  ASSERT_EQ(schedule.items.size(), 1u);
  const ScheduledRead& read = schedule.items[0].read;
  EXPECT_EQ(read.offset, 1000u);
  EXPECT_EQ(read.record_count, 16u);
  ASSERT_EQ(read.slices.size(), 2u);
  EXPECT_EQ(read.slices[0].scan_index, 1);
  EXPECT_EQ(read.slices[1].scan_index, 0);
  EXPECT_EQ(schedule.sequential_reads, 1u);
  EXPECT_EQ(schedule.coalesced_scans, 2u);
}

TEST(PlanScheduler, SplitsRunsAtMaxReadRecords) {
  QueryPlan plan;
  plan.scans.push_back(full_scan(0, 8));
  plan.scans.push_back(full_scan(8 * 16, 8));
  ScheduleParams params = base_params();
  params.max_read_records = 8;  // each brick fills a whole read
  const ScheduledPlan schedule = schedule_plan(plan, params);
  ASSERT_EQ(schedule.items.size(), 2u);
  EXPECT_EQ(schedule.items[0].read.record_count, 8u);
  EXPECT_EQ(schedule.items[1].read.record_count, 8u);
}

TEST(PlanScheduler, BridgesGapOnlyWithCrcCover) {
  // Planned bricks at records [0, 4) and [8, 12); the gap [4, 8) is one
  // whole unplanned brick. Layout (densely packed, 16-byte records):
  const std::vector<BrickEntry> bricks = {
      {.vmax = 1, .min_vmin = 0, .offset = 0, .count = 4, .crc_begin = 0},
      {.vmax = 2, .min_vmin = 0, .offset = 64, .count = 4, .crc_begin = 1},
      {.vmax = 3, .min_vmin = 0, .offset = 128, .count = 4, .crc_begin = 2},
  };
  const std::vector<std::uint32_t> crcs = {11, 22, 33};

  QueryPlan plan;
  plan.crc_chunk_records = 4;
  plan.scans.push_back(full_scan(0, 4));
  plan.scans.push_back(full_scan(128, 4));
  plan.scans[0].chunk_crcs = {crcs.data(), 1};
  plan.scans[1].chunk_crcs = {crcs.data() + 2, 1};

  ScheduleParams params = base_params();
  params.require_crc_cover = true;

  // With the directory the gap brick is resolvable: one read, the middle
  // slice is an anonymous, CRC-covered filler.
  const BrickDirectory directory{bricks, crcs};
  const ScheduledPlan bridged = schedule_plan(plan, params, directory);
  ASSERT_EQ(bridged.items.size(), 1u);
  ASSERT_EQ(bridged.items[0].read.slices.size(), 3u);
  const ReadSlice& filler = bridged.items[0].read.slices[1];
  EXPECT_EQ(filler.scan_index, -1);
  EXPECT_EQ(filler.record_count, 4u);
  ASSERT_EQ(filler.chunk_crcs.size(), 1u);
  EXPECT_EQ(filler.chunk_crcs[0], 22u);
  EXPECT_EQ(bridged.bridged_gap_bytes, 64u);

  // Without the directory the gap cannot be verified: the run breaks into
  // two reads rather than transferring unverifiable bytes.
  const ScheduledPlan broken = schedule_plan(plan, params);
  ASSERT_EQ(broken.items.size(), 2u);
  EXPECT_EQ(broken.bridged_gap_bytes, 0u);

  // With verification off the same gap is bridged anonymously.
  params.require_crc_cover = false;
  const ScheduledPlan anonymous = schedule_plan(plan, params);
  ASSERT_EQ(anonymous.items.size(), 1u);
  EXPECT_EQ(anonymous.bridged_gap_bytes, 64u);
  EXPECT_TRUE(anonymous.items[0].read.slices[1].chunk_crcs.empty());
}

TEST(PlanScheduler, RespectsMaxGap) {
  QueryPlan plan;
  plan.scans.push_back(full_scan(0, 4));
  plan.scans.push_back(full_scan(64 + 1024, 4));  // gap of 1024 bytes
  ScheduleParams params = base_params();  // max_gap_bytes = 512
  const ScheduledPlan schedule = schedule_plan(plan, params);
  EXPECT_EQ(schedule.items.size(), 2u);
  EXPECT_EQ(schedule.bridged_gap_bytes, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence and efficiency through the RetrievalStream
// ---------------------------------------------------------------------------

TEST(ScheduledRetrieval, CoalescedMatchesLegacyRecordsAndStats) {
  const auto infos = random_intervals(3000, 200, 17);
  Built coalesced = build_one(infos);
  Built legacy = build_one(infos);

  RetrievalOptions coalesce_on;
  RetrievalOptions coalesce_off;
  coalesce_off.coalesce = false;

  for (std::uint32_t v = 5; v <= 200; v += 13) {
    const auto isovalue = static_cast<core::ValueKey>(v);
    const RunResult a =
        run_query(coalesced.tree, isovalue, *coalesced.device, coalesce_on);
    const RunResult b =
        run_query(legacy.tree, isovalue, *legacy.device, coalesce_off);

    // Identical record multiset (== brute force) and identical query
    // counters: coalescing changes the read pattern, never the result.
    EXPECT_EQ(a.ids, b.ids) << "isovalue " << v;
    EXPECT_EQ(a.ids, brute_force(infos, isovalue)) << "isovalue " << v;
    EXPECT_EQ(a.stats.active_metacells, b.stats.active_metacells);
    EXPECT_EQ(a.stats.records_fetched, b.stats.records_fetched);
    EXPECT_EQ(a.stats.bricks_scanned, b.stats.bricks_scanned);
  }
}

TEST(ScheduledRetrieval, CoalescingCutsReadOpsAtMidRangeIsovalue) {
  // A one-block readahead window: any jump past the next block costs a
  // seek, as on a device with no prefetcher. (The default 12-block window
  // absorbs most per-brick hops as skip_blocks, masking the seek count —
  // the bandwidth those skipped bytes cost still shows in blocks/read_ops.)
  const auto infos = random_intervals(4000, 200, 23);
  Built coalesced = build_one(infos, /*readahead_blocks=*/1);
  Built legacy = build_one(infos, /*readahead_blocks=*/1);

  RetrievalOptions coalesce_on;
  // The auto gap window tracks the device readahead (1 block here); widen
  // it to the default window's span so the schedule matches the default-
  // device shape while the seek accounting stays strict.
  coalesce_on.coalesce_gap_bytes = 12 * 512;
  RetrievalOptions coalesce_off;
  coalesce_off.coalesce = false;

  // Mid-range isovalue: many Case-1 bricks are active, so the legacy
  // schedule pays one read per brick while the sorted, coalesced sweep
  // merges neighbors.
  const core::ValueKey isovalue = 100.0f;
  const RunResult a =
      run_query(coalesced.tree, isovalue, *coalesced.device, coalesce_on);
  const RunResult b =
      run_query(legacy.tree, isovalue, *legacy.device, coalesce_off);

  ASSERT_EQ(a.ids, b.ids);
  ASSERT_GT(a.stats.active_metacells, 100u);
  EXPECT_GT(a.coalesced_scans, 0u);
  EXPECT_EQ(b.coalesced_scans, 0u);

  // The acceptance bar: >= 30% fewer read operations, never more seeks.
  // (This tree's planner already emits scans in near-disk order, so the
  // legacy seek count is small here; the strict seek reduction is asserted
  // on a plan whose order scrambles the disk layout, below.)
  EXPECT_LE(10 * a.io.read_ops, 7 * b.io.read_ops)
      << "coalesced " << a.io.read_ops << " vs legacy " << b.io.read_ops;
  EXPECT_LE(a.io.seeks, b.io.seeks)
      << "coalesced " << a.io.seeks << " vs legacy " << b.io.seeks;
}

TEST(ScheduledRetrieval, SortingScrambledPlanCutsReadOpsAndSeeks) {
  // A plan whose scan order is uncorrelated with the disk layout (as from
  // an index whose walk order is not offset order): the legacy execution
  // jumps the head around per brick, the scheduler's sorted sweep does not.
  constexpr std::size_t kRecordSize = 16;
  constexpr std::uint32_t kBrickRecords = 8;
  constexpr std::uint64_t kBrickBytes = kBrickRecords * kRecordSize;
  constexpr std::size_t kBricks = 64;

  io::MemoryBlockDevice device(512, /*readahead_blocks=*/1);
  std::uint32_t next_id = 0;
  for (std::size_t brick = 0; brick < kBricks; ++brick) {
    for (std::uint32_t r = 0; r < kBrickRecords; ++r) {
      std::vector<std::byte> bytes;
      io::ByteWriter writer(bytes);
      writer.put(next_id++);
      bytes.resize(kRecordSize);
      device.write(brick * kBrickBytes + r * kRecordSize, bytes);
    }
  }

  // Plan two of every three bricks, in an order scrambled by a multiplier
  // coprime to the count.
  QueryPlan plan;
  std::vector<std::uint32_t> expected_ids;
  for (std::size_t i = 0; i < kBricks; ++i) {
    const std::size_t brick = (i * 29) % kBricks;
    if (brick % 3 == 2) continue;
    BrickScan scan;
    scan.offset = brick * kBrickBytes;
    scan.metacell_count = kBrickRecords;
    scan.full = true;
    plan.scans.push_back(scan);
    for (std::uint32_t r = 0; r < kBrickRecords; ++r) {
      expected_ids.push_back(
          static_cast<std::uint32_t>(brick) * kBrickRecords + r);
    }
  }
  std::sort(expected_ids.begin(), expected_ids.end());

  RunResult results[2];
  for (int mode = 0; mode < 2; ++mode) {
    RetrievalOptions options;
    options.coalesce = mode == 0;
    const io::IoStats before = device.stats();
    RetrievalStream stream(plan, core::ScalarKind::kU8, kRecordSize, device,
                           options);
    while (std::optional<RecordBatch> batch = stream.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        results[mode].ids.push_back(record_id(batch->record(r)));
      }
    }
    std::sort(results[mode].ids.begin(), results[mode].ids.end());
    results[mode].stats = stream.stats();
    results[mode].io = device.stats().since(before);
  }

  const RunResult& a = results[0];  // coalesced
  const RunResult& b = results[1];  // legacy
  EXPECT_EQ(a.ids, expected_ids);
  EXPECT_EQ(b.ids, expected_ids);
  EXPECT_EQ(a.stats.records_fetched, b.stats.records_fetched);

  EXPECT_LE(10 * a.io.read_ops, 7 * b.io.read_ops)
      << "coalesced " << a.io.read_ops << " vs legacy " << b.io.read_ops;
  EXPECT_LT(a.io.seeks, b.io.seeks)
      << "coalesced " << a.io.seeks << " vs legacy " << b.io.seeks;
}

TEST(ScheduledRetrieval, CoalescedMatchesLegacyUnderInjectedCorruption) {
  const auto infos = random_intervals(2500, 160, 31);
  Built coalesced = build_one(infos);
  Built legacy = build_one(infos);
  ASSERT_GT(coalesced.tree.crc_chunk_records(), 0u);

  io::FaultConfig fault_config;
  fault_config.seed = 97;
  fault_config.read_corruption_rate = 0.08;
  io::FaultInjectingBlockDevice faulty_coalesced(*coalesced.device,
                                                 fault_config);
  io::FaultInjectingBlockDevice faulty_legacy(*legacy.device, fault_config);

  RetrievalOptions coalesce_on;  // verify_checksums defaults to true
  RetrievalOptions coalesce_off;
  coalesce_off.coalesce = false;

  const core::ValueKey isovalue = 80.0f;
  const RunResult a =
      run_query(coalesced.tree, isovalue, faulty_coalesced, coalesce_on);
  const RunResult b =
      run_query(legacy.tree, isovalue, faulty_legacy, coalesce_off);

  // Retries absorb the corruption: both schedules still deliver exactly
  // the active set with identical counters.
  EXPECT_EQ(a.ids, b.ids);
  EXPECT_EQ(a.ids, brute_force(infos, isovalue));
  EXPECT_EQ(a.stats.active_metacells, b.stats.active_metacells);
  EXPECT_EQ(a.stats.records_fetched, b.stats.records_fetched);
  EXPECT_EQ(a.stats.bricks_scanned, b.stats.bricks_scanned);

  // Detection is airtight in both modes: every injected corrupted read —
  // including ones that only touch bridged gap bytes — raises exactly one
  // checksum failure. (The schedules read different byte ranges, so the
  // two runs see different fault sequences; each must equal its own
  // injector's count.)
  ASSERT_GT(faulty_coalesced.injected().corrupted_reads, 0u);
  ASSERT_GT(faulty_legacy.injected().corrupted_reads, 0u);
  EXPECT_EQ(a.faults.checksum_failures,
            faulty_coalesced.injected().corrupted_reads);
  EXPECT_EQ(b.faults.checksum_failures,
            faulty_legacy.injected().corrupted_reads);
}

TEST(ScheduledRetrieval, WiderGapWindowNeverChangesResults) {
  const auto infos = random_intervals(1200, 100, 41);
  Built narrow = build_one(infos);
  Built wide = build_one(infos);

  RetrievalOptions narrow_options;
  narrow_options.coalesce_gap_bytes = 0;  // adjacent-only coalescing
  RetrievalOptions wide_options;
  wide_options.coalesce_gap_bytes = 1 << 20;  // bridge any gap

  for (const float isovalue : {20.0f, 50.0f, 80.0f}) {
    const RunResult a =
        run_query(narrow.tree, isovalue, *narrow.device, narrow_options);
    const RunResult b =
        run_query(wide.tree, isovalue, *wide.device, wide_options);
    EXPECT_EQ(a.ids, b.ids) << isovalue;
    EXPECT_EQ(a.stats.records_fetched, b.stats.records_fetched) << isovalue;
    // Wider windows can only merge more: never more read ops.
    EXPECT_GE(a.io.read_ops, b.io.read_ops) << isovalue;
  }
}

}  // namespace
}  // namespace oociso::index
