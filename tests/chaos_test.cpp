// Chaos soak: randomized seeded fault schedules against an 8-way
// QueryServer over a k=2 replicated index. Each round kills one node's
// store mid-run (die_after_reads under the shared pools — a global death
// point across the concurrent queries) and sprinkles transient faults on
// the survivors; every query must still complete with a mesh bit-identical
// to the healthy golden, the hedge/degraded counters must reconcile with
// the metrics registry, and the health tracker must trip the dead node.
// Carries the ctest label `chaos`; CI runs it under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "data/rm_generator.h"
#include "io/fault_injection.h"
#include "metacell/source.h"
#include "obs/metrics.h"
#include "parallel/cluster.h"
#include "pipeline/preprocess.h"
#include "pipeline/query_engine.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace oociso {
namespace {

constexpr std::size_t kNodes = 4;

parallel::Cluster make_cluster() {
  parallel::ClusterConfig config;
  config.node_count = kNodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

core::VolumeU8 chaos_volume() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return data::generate_rm_timestep(config, 200);
}

std::vector<core::ValueKey> sweep_isovalues() {
  return {96.0f, 110.0f, 120.0f, 128.0f, 135.0f, 150.0f, 170.0f, 190.0f};
}

bool same_triangles(const extract::TriangleSoup& a,
                    const extract::TriangleSoup& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.triangles().data(), b.triangles().data(),
                      a.size() * sizeof(extract::Triangle)) == 0);
}

/// One randomized chaos round, fully determined by `seed`: which node dies,
/// after how many store reads, and the survivors' transient-fault streams.
struct ChaosSchedule {
  std::size_t dead_node = 0;
  std::int64_t die_after = 0;
  std::vector<io::FaultConfig> per_node;

  static ChaosSchedule from_seed(std::uint64_t seed) {
    ChaosSchedule schedule;
    std::uint64_t state = seed;
    schedule.dead_node = util::splitmix64(state) % kNodes;
    // Death points from "dead before the first read" up to "well into the
    // sweep" — both extremes must converge to the healthy mesh. The range
    // is sized to the dozen-odd physical reads a node store serves for this
    // volume under the shared pools, so most seeds kill the store mid-sweep.
    schedule.die_after =
        static_cast<std::int64_t>(util::splitmix64(state) % 12);
    schedule.per_node.resize(kNodes);
    for (std::size_t node = 0; node < kNodes; ++node) {
      if (node == schedule.dead_node) {
        schedule.per_node[node].die_after_reads = schedule.die_after;
      } else {
        // Light transient noise on the survivors, absorbed by retry.
        schedule.per_node[node].seed = util::splitmix64(state);
        schedule.per_node[node].read_failure_rate = 0.02;
      }
    }
    return schedule;
  }
};

TEST(ChaosSoak, RandomFaultSchedulesConvergeToTheHealthyGolden) {
  const core::VolumeU8 volume = chaos_volume();
  auto cluster = make_cluster();
  const auto source = metacell::make_source(volume, 9);
  pipeline::PreprocessConfig prep_config;
  prep_config.placement.replication = 2;
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster, prep_config);
  ASSERT_GT(prep.replica_bytes_written, 0u);

  // Healthy golden: the serial uncached sweep on the same replicated index.
  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  std::vector<extract::TriangleSoup> golden;
  {
    pipeline::QueryEngine engine(cluster, prep);
    pipeline::QueryOptions options;
    options.render = false;
    options.keep_triangles = true;
    for (const core::ValueKey isovalue : isovalues) {
      golden.push_back(std::move(*engine.run(isovalue, options).triangles_out));
    }
  }

  std::size_t rounds_with_hedges = 0;
  std::size_t rounds_with_trip = 0;
  for (const std::uint64_t seed : {11ull, 23ull, 47ull, 91ull}) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const ChaosSchedule schedule = ChaosSchedule::from_seed(seed);

    obs::MetricsRegistry metrics;
    serve::ServeOptions options;
    options.max_concurrent_queries = 8;
    options.cache_capacity_blocks = 512;
    options.inject_faults_per_node = schedule.per_node;
    options.metrics = &metrics;
    options.query.render = false;
    options.query.keep_triangles = true;
    serve::QueryServer server(cluster, prep, options);

    // Every query completes — no exception reaches the client — and every
    // mesh matches the healthy golden bit for bit.
    const std::vector<pipeline::QueryReport> reports =
        server.serve(isovalues);
    ASSERT_EQ(reports.size(), isovalues.size());
    std::uint64_t hedges = 0;
    std::uint64_t per_node_hedges = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
      ASSERT_TRUE(reports[i].triangles_out.has_value());
      EXPECT_TRUE(same_triangles(*reports[i].triangles_out, golden[i]))
          << "isovalue " << isovalues[i];
      const std::uint64_t query_hedges =
          reports[i].total_retrieval_faults().hedged_reads;
      // A query that hedged ran degraded, always.
      if (query_hedges > 0) {
        EXPECT_TRUE(reports[i].degraded);
      }
      hedges += query_hedges;
      for (const pipeline::NodeReport& node : reports[i].nodes) {
        per_node_hedges += node.faults.retrieval.hedged_reads;
      }
    }
    // Counters reconcile: the per-node breakdown sums to the query totals,
    // and the registry's faults.hedges saw exactly the reported hedges.
    EXPECT_EQ(per_node_hedges, hedges);
    const obs::MetricsSnapshot snapshot = metrics.snapshot();
    EXPECT_EQ(snapshot.counter("faults.hedges"), hedges);

    if (hedges > 0) {
      ++rounds_with_hedges;
      // The dead node's re-routed traffic lands on the survivors: no single
      // survivor absorbs the bulk of what the whole sweep served.
      std::vector<std::uint64_t> served(kNodes, 0);
      std::uint64_t total_served = 0;
      for (const pipeline::QueryReport& report : reports) {
        for (std::size_t node = 0; node < kNodes; ++node) {
          served[node] += report.served_io(node).read_ops;
          total_served += report.served_io(node).read_ops;
        }
      }
      for (std::size_t node = 0; node < kNodes; ++node) {
        if (node == schedule.dead_node) continue;
        EXPECT_LT(static_cast<double>(served[node]),
                  0.75 * static_cast<double>(total_served))
            << "survivor " << node << " absorbed the whole re-route";
      }
    }
    if (server.health().trips(schedule.dead_node) > 0) ++rounds_with_trip;
  }
  // The schedules are seeded to actually exercise the machinery: across the
  // soak at least one round hedged and at least one tripped the dead node.
  EXPECT_GT(rounds_with_hedges, 0u);
  EXPECT_GT(rounds_with_trip, 0u);
}

TEST(ChaosSoak, DeadFromTheFirstReadStillServesTheSweep) {
  const core::VolumeU8 volume = chaos_volume();
  auto cluster = make_cluster();
  const auto source = metacell::make_source(volume, 9);
  pipeline::PreprocessConfig prep_config;
  prep_config.placement.replication = 2;
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster, prep_config);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  std::vector<extract::TriangleSoup> golden;
  {
    pipeline::QueryEngine engine(cluster, prep);
    pipeline::QueryOptions options;
    options.render = false;
    options.keep_triangles = true;
    for (const core::ValueKey isovalue : isovalues) {
      golden.push_back(std::move(*engine.run(isovalue, options).triangles_out));
    }
  }

  serve::ServeOptions options;
  options.max_concurrent_queries = 8;
  options.cache_capacity_blocks = 512;
  options.inject_faults_per_node.resize(kNodes);
  options.inject_faults_per_node[2].die_after_reads = 0;  // never serves
  options.query.render = false;
  options.query.keep_triangles = true;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<pipeline::QueryReport> reports = server.serve(isovalues);
  ASSERT_EQ(reports.size(), isovalues.size());
  bool any_degraded = false;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_TRUE(same_triangles(*reports[i].triangles_out, golden[i]))
        << "isovalue " << isovalues[i];
    any_degraded = any_degraded || reports[i].degraded;
  }
  EXPECT_TRUE(any_degraded);
  // A store that never serves a read trips quickly and stays tripped.
  EXPECT_EQ(server.health().state(2),
            placement::NodeHealthTracker::State::kTripped);
  EXPECT_GT(server.health().trips(2), 0u);
}

}  // namespace
}  // namespace oociso
