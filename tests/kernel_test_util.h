#pragma once
// Shared helpers for the marching-cubes kernel test suite
// (kernel_equivalence_test, kernel_fuzz_test, kernel_property_test).
//
// The contract these tests pin: every classification ISA (scalar, sse2,
// avx2) and both kernel structures (incremental planes vs per-cell
// reference) must emit the exact same triangle sequence, bit for bit, and
// agree on every deterministic counter. Two equality grades exist because
// the per-cell reference does not run the vertex cache or the classify
// timer:
//   * expect_counter_stats_equal — cells/active/triangles only (use when
//     one side is the per-cell reference),
//   * expect_stats_equal — also vertex_cache_hits (use between two runs of
//     the incremental pipeline, e.g. scalar vs avx2).
// classify_seconds is wall-clock-adjacent and never part of equality.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/volume.h"
#include "extract/marching_cubes.h"
#include "util/rng.h"

namespace oociso::extract::testutil {

/// Byte-exact equality of two triangle sequences (same count, same order,
/// same float bits).
inline ::testing::AssertionResult bit_identical(const TriangleSoup& a,
                                                const TriangleSoup& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "triangle counts differ: " << a.size() << " vs " << b.size();
  }
  if (a.size() > 0 &&
      std::memcmp(a.triangles().data(), b.triangles().data(),
                  a.size() * sizeof(Triangle)) != 0) {
    return ::testing::AssertionFailure() << "triangle bytes differ";
  }
  return ::testing::AssertionSuccess();
}

/// Counter equality against the per-cell reference (which reports no
/// vertex-cache hits by construction).
inline void expect_counter_stats_equal(const MarchingCubesStats& a,
                                       const MarchingCubesStats& b) {
  EXPECT_EQ(a.cells_visited, b.cells_visited);
  EXPECT_EQ(a.active_cells, b.active_cells);
  EXPECT_EQ(a.triangles, b.triangles);
}

/// Full deterministic-counter equality between two incremental-pipeline
/// runs: a different classify ISA must not change what the cache sees.
inline void expect_stats_equal(const MarchingCubesStats& a,
                               const MarchingCubesStats& b) {
  expect_counter_stats_equal(a, b);
  EXPECT_EQ(a.vertex_cache_hits, b.vertex_cache_hits);
}

// Corner numbering of mc_tables.h: v0=(0,0,0) v1=(1,0,0) v2=(1,1,0)
// v3=(0,1,0) v4=(0,0,1) v5=(1,0,1) v6=(1,1,1) v7=(0,1,1).
constexpr std::array<std::array<std::int32_t, 3>, 8> kCorner = {{
    {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
    {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}};

/// Deterministic random volume; floats land in [0, ~255.75] with
/// non-round fractions so every crossing edge interpolates for real.
template <typename T>
core::Volume<T> random_volume(core::GridDims dims, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  core::Volume<T> volume(dims);
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      for (std::int32_t x = 0; x < dims.nx; ++x) {
        if constexpr (std::is_floating_point_v<T>) {
          volume.at(x, y, z) =
              static_cast<T>(rng.bounded(100000)) / T{391.0};
        } else {
          volume.at(x, y, z) = static_cast<T>(
              rng.bounded(std::uint32_t{1}
                          << (8 * static_cast<unsigned>(sizeof(T)))));
        }
      }
    }
  }
  return volume;
}

}  // namespace oociso::extract::testutil
