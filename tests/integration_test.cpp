// Cross-feature integration scenarios: each test strings several
// subsystems together the way a deployment would.

#include <gtest/gtest.h>

#include "compositing/tiled_display.h"
#include "data/raw_io.h"
#include "data/rm_generator.h"
#include "extract/indexed_mesh.h"
#include "extract/marching_cubes.h"
#include "index/external_tree.h"
#include "io/memory_block_device.h"
#include "index/span_analysis.h"
#include "metacell/source.h"
#include "pipeline/bundle.h"
#include "pipeline/ooc_preprocess.h"
#include "pipeline/query_engine.h"
#include "util/temp_dir.h"

namespace oociso {
namespace {

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return config;
}

// Scenario: preprocess out of core, persist the bundle, reattach in a new
// "session", and query — the full deployment loop with no in-memory path.
TEST(Integration, OocPreprocessThenBundleThenReattachedQuery) {
  util::TempDir dir("oociso-int-loop");
  const auto volume = data::generate_rm_timestep(small_rm(), 240);
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);

  const auto storage = dir.path() / "storage";
  std::filesystem::create_directories(storage);
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage;
    parallel::Cluster cluster(config);
    const auto ooc = pipeline::preprocess_out_of_core(
        volume_file, cluster, dir.path() / "scratch");
    pipeline::save_bundle(ooc.result, storage);
  }

  parallel::ClusterConfig config;
  config.node_count = 3;
  config.storage_dir = storage;
  config.open_existing = true;
  parallel::Cluster cluster(config);
  const pipeline::PreprocessResult prep = pipeline::load_bundle(storage);
  pipeline::QueryEngine engine(cluster, prep);

  extract::TriangleSoup reference;
  extract::extract_volume(volume, 128.0f, reference);
  pipeline::QueryOptions options;
  options.render = false;
  EXPECT_EQ(engine.run(128.0f, options).total_triangles(), reference.size());
}

// Scenario: a bundle-loaded tree round-trips through the blocked external
// form and still plans identically — index persistence composes with the
// out-of-core index fallback.
TEST(Integration, BundledTreeSurvivesExternalBlocking) {
  util::TempDir dir("oociso-int-ext");
  const auto volume = data::generate_rm_timestep(small_rm(), 130);
  const auto storage = dir.path() / "storage";
  std::filesystem::create_directories(storage);

  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  pipeline::save_bundle(prep, storage);
  const pipeline::PreprocessResult loaded = pipeline::load_bundle(storage);

  for (std::size_t node = 0; node < 2; ++node) {
    io::MemoryBlockDevice index_device(512);
    const index::ExternalCompactTree external =
        index::ExternalCompactTree::build(loaded.trees[node], index_device,
                                          512);
    for (const float isovalue : {50.0f, 128.0f, 210.0f}) {
      const auto in_core = loaded.trees[node].plan(isovalue);
      const auto blocked = external.plan(isovalue, index_device);
      ASSERT_EQ(in_core.scans.size(), blocked.scans.size()) << isovalue;
      for (std::size_t i = 0; i < in_core.scans.size(); ++i) {
        EXPECT_EQ(in_core.scans[i].offset, blocked.scans[i].offset);
        EXPECT_EQ(in_core.scans[i].full, blocked.scans[i].full);
      }
    }
  }
}

// Scenario: a span profile's suggestions drive real queries, and its cost
// estimate ranks them correctly against the measured active counts.
TEST(Integration, ProfileSuggestionsPredictQueryCosts) {
  const auto volume = data::generate_rm_timestep(small_rm(), 220);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  const index::SpanProfile profile(infos, 256);
  pipeline::QueryOptions options;
  options.render = false;
  for (const float isovalue : profile.suggest_isovalues(3)) {
    const auto report = engine.run(isovalue, options);
    EXPECT_GT(report.total_triangles(), 0u) << isovalue;
    // The bucket estimate bounds the measured active count from above and
    // stays within bucket-granularity slack of it.
    EXPECT_GE(profile.active_estimate(isovalue) + 2,
              report.total_active_metacells());
    EXPECT_NEAR(
        static_cast<double>(profile.active_estimate(isovalue)),
        static_cast<double>(report.total_active_metacells()),
        std::max(8.0, 0.15 * static_cast<double>(
                                 report.total_active_metacells())));
  }
}

// Scenario: render per node, composite to a 2x2 display wall, and verify
// the wall shows exactly what a single display would.
TEST(Integration, QueryImageRoutesToDisplayWall) {
  const auto volume = data::generate_rm_timestep(small_rm(), 190);
  parallel::ClusterConfig config;
  config.node_count = 4;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions options;
  options.keep_image = true;
  options.image_width = options.image_height = 96;
  const pipeline::QueryReport report = engine.run(140.0f, options);
  ASSERT_TRUE(report.image.has_value());
  ASSERT_GT(report.image->covered_pixels(), 0u);

  const std::vector<render::Framebuffer> frames{*report.image};
  const auto tiled =
      compositing::composite_to_tiles(frames, compositing::TileLayout{2, 2});
  const render::Framebuffer wall = compositing::assemble(tiled, 96, 96);
  for (std::int32_t y = 0; y < 96; ++y) {
    for (std::int32_t x = 0; x < 96; ++x) {
      ASSERT_EQ(wall.color_at(x, y), report.image->color_at(x, y));
    }
  }
}

// Scenario: weld a full parallel query's soup and check surface sanity on
// the welded mesh (area preserved, plausible topology for a mixing layer).
TEST(Integration, ParallelQueryWeldsIntoSaneMesh) {
  const auto volume = data::generate_rm_timestep(small_rm(), 250);
  parallel::ClusterConfig config;
  config.node_count = 4;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  const pipeline::QueryReport report = engine.run(126.5f, options);
  ASSERT_GT(report.total_triangles(), 1000u);

  const extract::IndexedMesh mesh =
      extract::IndexedMesh::weld(*report.triangles_out);
  EXPECT_LT(mesh.vertex_count(), 3 * mesh.triangle_count());  // real sharing
  EXPECT_NEAR(mesh.total_area(), report.triangles_out->total_area(),
              report.triangles_out->total_area() * 1e-4);
  EXPECT_GE(mesh.connected_components(), 1u);
  // Normals exist and are unit length where defined.
  for (const core::Vec3& n : mesh.vertex_normals()) {
    const float len = n.length();
    EXPECT_TRUE(len == 0.0f || std::abs(len - 1.0f) < 1e-3f);
  }
}

}  // namespace
}  // namespace oociso
