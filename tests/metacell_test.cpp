#include <gtest/gtest.h>

#include <fstream>

#include "data/analytic_fields.h"
#include "metacell/metacell.h"
#include "metacell/source.h"

namespace oociso::metacell {
namespace {

using core::Coord3;
using core::GridDims;
using core::VolumeU8;

// ---------------------------------------------------------------------------
// MetacellGeometry
// ---------------------------------------------------------------------------

TEST(Geometry, PaperDimensions) {
  // 2048^2 x 1920 one-byte samples with 9-sample metacells -> 256x256x240.
  const MetacellGeometry geometry({2048, 2048, 1920}, 9);
  EXPECT_EQ(geometry.metacell_dims(), (GridDims{256, 256, 240}));
  EXPECT_EQ(geometry.metacell_count(), 256u * 256u * 240u);
  EXPECT_EQ(geometry.cells_per_side(), 8);
}

TEST(Geometry, PaperRecordSize) {
  // 4-byte id + 1-byte vmin + 9^3 one-byte samples = 734 bytes (Section 7).
  EXPECT_EQ(record_size(core::ScalarKind::kU8, 9), 734u);
}

TEST(Geometry, SampleOriginAndIds) {
  const MetacellGeometry geometry({17, 17, 17}, 9);
  EXPECT_EQ(geometry.metacell_dims(), (GridDims{2, 2, 2}));
  EXPECT_EQ(geometry.sample_origin(0), (Coord3{0, 0, 0}));
  const std::uint32_t last = geometry.id({1, 1, 1});
  EXPECT_EQ(geometry.sample_origin(last), (Coord3{8, 8, 8}));
}

TEST(Geometry, ValidCellsClippedAtBorder) {
  // 14 samples = 13 cells: first metacell gets 8 cells, second gets 5.
  const MetacellGeometry geometry({14, 14, 14}, 9);
  EXPECT_EQ(geometry.metacell_dims(), (GridDims{2, 2, 2}));
  EXPECT_EQ(geometry.valid_cells(0), (GridDims{8, 8, 8}));
  const std::uint32_t last = geometry.id({1, 1, 1});
  EXPECT_EQ(geometry.valid_cells(last), (GridDims{5, 5, 5}));
}

TEST(Geometry, RejectsInvalidConfig) {
  EXPECT_THROW(MetacellGeometry({16, 16, 16}, 1), std::invalid_argument);
  EXPECT_THROW(MetacellGeometry({1, 16, 16}, 9), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// scan_metacells
// ---------------------------------------------------------------------------

TEST(Scan, CullsConstantMetacells) {
  VolumeU8 volume({17, 17, 17}, std::uint8_t{42});  // fully constant
  const MetacellGeometry geometry(volume.dims(), 9);
  EXPECT_TRUE(scan_metacells(volume, geometry).empty());
  EXPECT_EQ(scan_metacells(volume, geometry, /*cull=*/false).size(),
            geometry.metacell_count());
}

TEST(Scan, IntervalsAreCorrect) {
  VolumeU8 volume({17, 17, 17}, std::uint8_t{10});
  volume.at(2, 3, 4) = 200;  // inside metacell (0,0,0)
  const MetacellGeometry geometry(volume.dims(), 9);
  const auto infos = scan_metacells(volume, geometry);
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].id, geometry.id({0, 0, 0}));
  EXPECT_EQ(infos[0].interval, (core::ValueInterval{10, 200}));
}

TEST(Scan, SharedBoundarySampleAffectsBothNeighbors) {
  // Sample x=8 is the overlap plane between metacells (0,..) and (1,..).
  VolumeU8 volume({17, 17, 17}, std::uint8_t{10});
  volume.at(8, 0, 0) = 99;
  const MetacellGeometry geometry(volume.dims(), 9);
  const auto infos = scan_metacells(volume, geometry);
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].interval.vmax, 99);
  EXPECT_EQ(infos[1].interval.vmax, 99);
}

TEST(Scan, DimensionMismatchThrows) {
  VolumeU8 volume({17, 17, 17});
  const MetacellGeometry other({25, 25, 25}, 9);
  EXPECT_THROW(scan_metacells(volume, other), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// encode / decode
// ---------------------------------------------------------------------------

TEST(Codec, RoundTripInterior) {
  const auto volume = data::make_gyroid_field({33, 33, 33});
  const MetacellGeometry geometry(volume.dims(), 9);
  const std::uint32_t id = geometry.id({1, 2, 0});

  std::vector<std::byte> bytes;
  encode_metacell(volume, geometry, id, bytes);
  EXPECT_EQ(bytes.size(), record_size(core::ScalarKind::kU8, 9));

  const DecodedMetacell cell =
      decode_metacell(bytes, core::ScalarKind::kU8, geometry);
  EXPECT_EQ(cell.id, id);
  EXPECT_EQ(cell.sample_origin, (Coord3{8, 16, 0}));
  EXPECT_EQ(cell.samples_per_side, 9);

  // Every decoded sample matches the source volume.
  float vmin = 1e9f;
  for (std::int32_t z = 0; z < 9; ++z) {
    for (std::int32_t y = 0; y < 9; ++y) {
      for (std::int32_t x = 0; x < 9; ++x) {
        const float expected = static_cast<float>(
            volume.at(cell.sample_origin.x + x, cell.sample_origin.y + y,
                      cell.sample_origin.z + z));
        EXPECT_EQ(cell.sample(x, y, z), expected);
        vmin = std::min(vmin, expected);
      }
    }
  }
  EXPECT_EQ(cell.vmin, vmin);
}

TEST(Codec, BorderMetacellClampsPadding) {
  const auto volume = data::make_sphere_field({14, 14, 14});
  const MetacellGeometry geometry(volume.dims(), 9);
  const std::uint32_t id = geometry.id({1, 1, 1});

  std::vector<std::byte> bytes;
  encode_metacell(volume, geometry, id, bytes);
  const DecodedMetacell cell =
      decode_metacell(bytes, core::ScalarKind::kU8, geometry);
  EXPECT_EQ(cell.valid_cells, (GridDims{5, 5, 5}));
  // Padding replicates the border sample.
  EXPECT_EQ(cell.sample(8, 8, 8), cell.sample(5, 5, 5));
}

TEST(Codec, RoundTripU16) {
  const auto volume = data::make_ct_head_field({17, 17, 17});
  const MetacellGeometry geometry(volume.dims(), 9);
  std::vector<std::byte> bytes;
  encode_metacell(volume, geometry, 0, bytes);
  EXPECT_EQ(bytes.size(), record_size(core::ScalarKind::kU16, 9));
  const DecodedMetacell cell =
      decode_metacell(bytes, core::ScalarKind::kU16, geometry);
  EXPECT_EQ(cell.sample(3, 3, 3), static_cast<float>(volume.at(3, 3, 3)));
}

TEST(Codec, RejectsWrongSize) {
  const MetacellGeometry geometry({17, 17, 17}, 9);
  std::vector<std::byte> bytes(10);
  EXPECT_THROW(decode_metacell(bytes, core::ScalarKind::kU8, geometry),
               std::runtime_error);
}

TEST(Codec, RejectsOutOfRangeId) {
  const MetacellGeometry geometry({17, 17, 17}, 9);
  std::vector<std::byte> bytes(record_size(core::ScalarKind::kU8, 9),
                               std::byte{0xFF});  // id = 0xFFFFFFFF
  EXPECT_THROW(decode_metacell(bytes, core::ScalarKind::kU8, geometry),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// MetacellSource
// ---------------------------------------------------------------------------

TEST(Source, OwningSourceMatchesDirectScan) {
  auto volume = data::make_gyroid_field({25, 25, 25});
  const MetacellGeometry geometry(volume.dims(), 9);
  const auto direct = scan_metacells(volume, geometry);

  const auto source = make_source(data::AnyVolume(std::move(volume)), 9);
  EXPECT_EQ(source->kind(), core::ScalarKind::kU8);
  EXPECT_EQ(source->geometry().metacell_dims(), geometry.metacell_dims());
  const auto scanned = source->scan();
  ASSERT_EQ(scanned.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(scanned[i].id, direct[i].id);
    EXPECT_EQ(scanned[i].interval, direct[i].interval);
  }
}

TEST(Source, RecordSizeMatchesKind) {
  const auto u16_source =
      make_source(data::make_dataset("mrbrain", 16), 9);
  EXPECT_EQ(u16_source->record_size(),
            record_size(core::ScalarKind::kU16, 9));
}

}  // namespace
}  // namespace oociso::metacell
