#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "data/analytic_fields.h"
#include "data/datasets.h"
#include "data/noise.h"
#include "data/raw_io.h"
#include "data/rm_generator.h"
#include "metacell/metacell.h"
#include "util/temp_dir.h"

namespace oociso::data {
namespace {

// ---------------------------------------------------------------------------
// ValueNoise
// ---------------------------------------------------------------------------

TEST(Noise, DeterministicPerSeed) {
  const ValueNoise a(11);
  const ValueNoise b(11);
  const ValueNoise c(12);
  EXPECT_EQ(a.sample(1.5f, 2.5f, 3.5f), b.sample(1.5f, 2.5f, 3.5f));
  EXPECT_NE(a.sample(1.5f, 2.5f, 3.5f), c.sample(1.5f, 2.5f, 3.5f));
}

TEST(Noise, BoundedOutput) {
  const ValueNoise noise(7);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(i) * 0.173f;
    const float v = noise.fbm(x, x * 0.7f, x * 1.3f, 4);
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Noise, SmoothBetweenLatticePoints) {
  const ValueNoise noise(7);
  // Value noise is continuous: nearby samples must be close.
  const float a = noise.sample(3.50f, 4.50f, 5.50f);
  const float b = noise.sample(3.51f, 4.50f, 5.50f);
  EXPECT_LT(std::abs(a - b), 0.2f);
}

TEST(Noise, NotConstant) {
  const ValueNoise noise(7);
  float lo = 1e9f;
  float hi = -1e9f;
  for (int i = 0; i < 200; ++i) {
    const float v = noise.sample(static_cast<float>(i) * 0.37f, 0.2f, 0.9f);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.3f);
}

// ---------------------------------------------------------------------------
// RM generator
// ---------------------------------------------------------------------------

RmConfig small_rm() {
  RmConfig config;
  config.dims = {64, 64, 60};
  config.time_steps = 270;
  return config;
}

TEST(RmGenerator, Deterministic) {
  const auto a = generate_rm_timestep(small_rm(), 100);
  const auto b = generate_rm_timestep(small_rm(), 100);
  EXPECT_TRUE(std::equal(a.samples().begin(), a.samples().end(),
                         b.samples().begin()));
}

TEST(RmGenerator, StepsDiffer) {
  const auto a = generate_rm_timestep(small_rm(), 50);
  const auto b = generate_rm_timestep(small_rm(), 200);
  EXPECT_FALSE(std::equal(a.samples().begin(), a.samples().end(),
                          b.samples().begin()));
}

TEST(RmGenerator, RejectsOutOfRangeStep) {
  EXPECT_THROW(generate_rm_timestep(small_rm(), -1), std::invalid_argument);
  EXPECT_THROW(generate_rm_timestep(small_rm(), 270), std::invalid_argument);
}

TEST(RmGenerator, TwoGasRegionsPresent) {
  const RmConfig config = small_rm();
  const auto volume = generate_rm_timestep(config, 100);
  // Bottom slab is pure light gas, top slab pure heavy gas.
  EXPECT_EQ(volume.at(5, 5, 0),
            static_cast<std::uint8_t>(config.light_gas_value));
  EXPECT_EQ(volume.at(5, 5, config.dims.nz - 1),
            static_cast<std::uint8_t>(config.heavy_gas_value));
}

TEST(RmGenerator, SubstantialFractionOfMetacellsIsConstant) {
  // The paper reports ~50% of RM metacells are constant-valued; the
  // synthetic analog must be in the same regime (large homogeneous slabs).
  const auto volume = generate_rm_timestep(small_rm(), 100);
  const metacell::MetacellGeometry geometry(volume.dims(), 9);
  const auto kept = metacell::scan_metacells(volume, geometry);
  const double culled = 1.0 - static_cast<double>(kept.size()) /
                                  static_cast<double>(geometry.metacell_count());
  EXPECT_GT(culled, 0.25);
  EXPECT_LT(culled, 0.85);
}

TEST(RmGenerator, MixingLayerGrowsOverTime) {
  // The active (non-constant) metacell count should grow as the instability
  // develops.
  const RmConfig config = small_rm();
  const auto early = generate_rm_timestep(config, 20);
  const auto late = generate_rm_timestep(config, 260);
  const metacell::MetacellGeometry geometry(config.dims, 9);
  const auto early_kept = metacell::scan_metacells(early, geometry);
  const auto late_kept = metacell::scan_metacells(late, geometry);
  EXPECT_GT(late_kept.size(), early_kept.size());
}

// ---------------------------------------------------------------------------
// Analytic fields
// ---------------------------------------------------------------------------

TEST(AnalyticFields, SphereFieldIsRadiallyMonotone) {
  const auto volume = make_sphere_field({33, 33, 33});
  const auto center = volume.at(16, 16, 16);
  const auto edge = volume.at(0, 16, 16);
  const auto corner = volume.at(0, 0, 0);
  EXPECT_GT(center, edge);
  EXPECT_GT(edge, corner);
}

TEST(AnalyticFields, GyroidUsesFullRangeSymmetrically) {
  const auto volume = make_gyroid_field({48, 48, 48});
  const auto range = volume.value_range();
  EXPECT_LE(range.vmin, 64);
  EXPECT_GE(range.vmax, 191);
}

TEST(AnalyticFields, CtHeadHas12BitRange) {
  const auto volume = make_ct_head_field({32, 32, 32});
  const auto range = volume.value_range();
  EXPECT_LE(range.vmax, 4095);
  EXPECT_GT(range.vmax, 2000);  // bone shell present
}

TEST(AnalyticFields, PressureAndVelocityAreNonTrivial) {
  const auto pressure = make_pressure_field({24, 24, 24});
  const auto velocity = make_velocity_field({24, 24, 24});
  EXPECT_FALSE(pressure.value_range().degenerate());
  EXPECT_FALSE(velocity.value_range().degenerate());
}

TEST(AnalyticFields, BunnyHasInsideAndOutside) {
  const auto volume = make_bunny_field({48, 48, 48});
  const auto range = volume.value_range();
  EXPECT_EQ(range.vmax, 255);  // deep inside the body
  EXPECT_LT(range.vmin, 64);   // far outside
}

// ---------------------------------------------------------------------------
// Dataset registry
// ---------------------------------------------------------------------------

TEST(Datasets, RegistryListsTable1Sets) {
  const auto infos = table1_datasets();
  ASSERT_EQ(infos.size(), 6u);
  EXPECT_EQ(infos.back().name, "rm");
  EXPECT_EQ(infos.back().full_dims, (core::GridDims{2048, 2048, 1920}));
}

TEST(Datasets, MakeDatasetHonorsDownscaleAndKind) {
  const AnyVolume bunny = make_dataset("bunny", 8);
  EXPECT_EQ(kind_of(bunny), core::ScalarKind::kU8);
  EXPECT_EQ(dims_of(bunny), (core::GridDims{64, 64, 45}));

  const AnyVolume brain = make_dataset("mrbrain", 8);
  EXPECT_EQ(kind_of(brain), core::ScalarKind::kU16);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(make_dataset("nope"), std::invalid_argument);
  EXPECT_THROW(make_dataset("bunny", 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Raw volume I/O
// ---------------------------------------------------------------------------

TEST(RawIo, RoundTripU8) {
  util::TempDir dir;
  const auto path = dir.file("vol.oocv");
  const AnyVolume original = make_dataset("bunny", 16);
  write_volume(original, path);
  const AnyVolume loaded = read_volume(path);
  ASSERT_EQ(kind_of(loaded), core::ScalarKind::kU8);
  const auto& a = std::get<core::VolumeU8>(original);
  const auto& b = std::get<core::VolumeU8>(loaded);
  EXPECT_EQ(a.dims(), b.dims());
  EXPECT_TRUE(std::equal(a.samples().begin(), a.samples().end(),
                         b.samples().begin()));
}

TEST(RawIo, RoundTripU16) {
  util::TempDir dir;
  const auto path = dir.file("vol16.oocv");
  const AnyVolume original = make_dataset("pressure", 16);
  write_volume(original, path);
  const AnyVolume loaded = read_volume(path);
  ASSERT_EQ(kind_of(loaded), core::ScalarKind::kU16);
  const auto& a = std::get<core::VolumeU16>(original);
  const auto& b = std::get<core::VolumeU16>(loaded);
  EXPECT_TRUE(std::equal(a.samples().begin(), a.samples().end(),
                         b.samples().begin()));
}

TEST(RawIo, RejectsGarbage) {
  util::TempDir dir;
  const auto path = dir.file("garbage.oocv");
  std::ofstream(path) << "this is not a volume";
  EXPECT_THROW(read_volume(path), std::runtime_error);
  EXPECT_THROW(read_volume(dir.file("missing.oocv")), std::runtime_error);
}

}  // namespace
}  // namespace oociso::data
