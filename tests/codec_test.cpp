// Index-format v4: per-chunk compression, raw-space addressing, and
// decode-on-fetch (DESIGN §14). The contract these tests pin:
//   * the block codec round-trips any buffer, never grows one (raw
//     passthrough escape), and rejects truncated or bit-flipped encoded
//     chunks as the retriable corruption fault the taxonomy specifies;
//   * ChunkMap translates raw offsets to device offsets exactly on chunk
//     boundaries and validates its extents;
//   * ChunkDecodingDevice presents a bit-exact raw address space over a
//     compressed store while its IoStats keep reporting the *physical*
//     (compressed) traffic, with decode CPU in the thread ledger;
//   * `--compression none` builds are byte-identical to the legacy v2/v3
//     layout, on disk and serialized;
//   * v4 trees serialize round-trip losslessly;
//   * extracted meshes are bit-identical between none and lz across queue
//     depths, cold/warm shared cache, injected corruption, dead-node
//     failover on a replicated store, concurrent serving, and
//     time-varying steps sharing one raw address space.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "codec/chunk_map.h"
#include "codec/codec.h"
#include "codec/decoding_device.h"
#include "data/rm_generator.h"
#include "extract/marching_cubes.h"
#include "index/compact_interval_tree.h"
#include "index/retrieval_stream.h"
#include "io/fault_injection.h"
#include "io/io_error.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "pipeline/preprocess.h"
#include "pipeline/query_engine.h"
#include "pipeline/timevarying.h"
#include "serve/query_server.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace oociso {
namespace {

// ---------------------------------------------------------------------------
// Codec unit / property tests
// ---------------------------------------------------------------------------

/// Record-structured, smoothly varying bytes — the shape the byte-shuffle
/// stage is designed for, reliably compressible.
std::vector<std::byte> structured_buffer(std::size_t records,
                                         std::size_t record_size) {
  std::vector<std::byte> raw(records * record_size);
  for (std::size_t r = 0; r < records; ++r) {
    for (std::size_t j = 0; j < record_size; ++j) {
      raw[r * record_size + j] =
          static_cast<std::byte>((r / 4 + j * 3) & 0xFF);
    }
  }
  return raw;
}

std::vector<std::byte> random_buffer(std::size_t bytes, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> raw(bytes);
  for (std::byte& b : raw) {
    b = static_cast<std::byte>(rng.bounded(256));
  }
  return raw;
}

TEST(Codec, ParseAndNames) {
  EXPECT_EQ(codec::parse_codec("none"), codec::Codec::kRaw);
  EXPECT_EQ(codec::parse_codec("lz"), codec::Codec::kLz);
  EXPECT_THROW((void)codec::parse_codec("zstd"), std::invalid_argument);
  EXPECT_THROW((void)codec::parse_codec(""), std::invalid_argument);
  EXPECT_EQ(codec::codec_name(codec::Codec::kRaw), "none");
  EXPECT_EQ(codec::codec_name(codec::Codec::kLz), "lz");
}

TEST(Codec, RoundTripsStructuredBuffersAtManyRecordSizes) {
  for (const std::size_t record_size : {std::size_t{13}, std::size_t{64},
                                        std::size_t{509}, std::size_t{1}}) {
    for (const std::size_t records :
         {std::size_t{1}, std::size_t{7}, std::size_t{200}}) {
      const std::vector<std::byte> raw = structured_buffer(records, record_size);
      std::vector<std::byte> encoded;
      const codec::Codec used = codec::encode_chunk(raw, record_size, encoded);
      EXPECT_LE(encoded.size(), raw.size())
          << "records=" << records << " record_size=" << record_size;
      std::vector<std::byte> decoded(raw.size());
      codec::decode_chunk(used, encoded, record_size, decoded);
      EXPECT_EQ(decoded, raw)
          << "records=" << records << " record_size=" << record_size;
    }
  }
  // A big structured chunk must actually win, not just escape to raw.
  const std::vector<std::byte> raw = structured_buffer(512, 64);
  std::vector<std::byte> encoded;
  EXPECT_EQ(codec::encode_chunk(raw, 64, encoded), codec::Codec::kLz);
  EXPECT_LT(encoded.size(), raw.size());
}

TEST(Codec, RandomBuffersEscapeToRawVerbatim) {
  for (const std::uint64_t seed : {1ull, 99ull, 4242ull}) {
    const std::vector<std::byte> raw = random_buffer(64 * 16, seed);
    std::vector<std::byte> encoded;
    const codec::Codec used = codec::encode_chunk(raw, 16, encoded);
    // Incompressible input must take the passthrough escape: stored
    // verbatim (never grows) and decodable back.
    EXPECT_EQ(used, codec::Codec::kRaw) << "seed " << seed;
    EXPECT_EQ(encoded, raw) << "seed " << seed;
    std::vector<std::byte> decoded(raw.size());
    codec::decode_chunk(used, encoded, 16, decoded);
    EXPECT_EQ(decoded, raw) << "seed " << seed;
  }
}

TEST(Codec, RoundTripsAdversarialPatterns) {
  const std::size_t record_size = 13;
  std::vector<std::vector<std::byte>> buffers;
  // All-zero, all-ones, single repeating byte: maximal match pressure.
  buffers.emplace_back(39 * record_size, std::byte{0});
  buffers.emplace_back(39 * record_size, std::byte{0xFF});
  buffers.emplace_back(1 * record_size, std::byte{0x5A});
  // Alternating pattern whose period collides with the shuffle stride.
  {
    std::vector<std::byte> alt(24 * record_size);
    for (std::size_t i = 0; i < alt.size(); ++i) {
      alt[i] = static_cast<std::byte>(i % record_size);
    }
    buffers.push_back(std::move(alt));
  }
  // Mostly random with a compressible tail (straddles the escape margin).
  {
    std::vector<std::byte> mixed = random_buffer(20 * record_size, 7);
    std::fill(mixed.begin() + static_cast<std::ptrdiff_t>(mixed.size() / 2),
              mixed.end(), std::byte{3});
    buffers.push_back(std::move(mixed));
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const std::vector<std::byte>& raw = buffers[i];
    std::vector<std::byte> encoded;
    const codec::Codec used = codec::encode_chunk(raw, record_size, encoded);
    EXPECT_LE(encoded.size(), raw.size()) << "buffer " << i;
    std::vector<std::byte> decoded(raw.size());
    codec::decode_chunk(used, encoded, record_size, decoded);
    EXPECT_EQ(decoded, raw) << "buffer " << i;
  }
}

/// Expects decode_chunk to throw the retriable corruption IoError —
/// the exact taxonomy upstream retry/reroute machinery dispatches on.
void expect_corruption(codec::Codec used, std::span<const std::byte> encoded,
                       std::size_t record_size, std::span<std::byte> out,
                       const std::string& context) {
  try {
    codec::decode_chunk(used, encoded, record_size, out);
    FAIL() << context << ": decode accepted malformed input";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kCorruption) << context;
    EXPECT_TRUE(error.retriable()) << context;
  }
}

TEST(Codec, RejectsTruncatedAndBitFlippedChunks) {
  const std::vector<std::byte> raw = structured_buffer(128, 64);
  std::vector<std::byte> encoded;
  const codec::Codec used = codec::encode_chunk(raw, 64, encoded);
  ASSERT_EQ(used, codec::Codec::kLz);
  std::vector<std::byte> out(raw.size());

  // Clean decode first, so the failures below are the input's fault.
  codec::decode_chunk(used, encoded, 64, out);
  ASSERT_EQ(out, raw);

  // Every single-byte corruption must be rejected: the stream CRC covers
  // the whole encoded body, including its own prefix.
  for (std::size_t at = 0; at < encoded.size();
       at += std::max<std::size_t>(1, encoded.size() / 37)) {
    std::vector<std::byte> flipped = encoded;
    flipped[at] ^= std::byte{0x40};
    expect_corruption(used, flipped, 64, out,
                      "bit flip at byte " + std::to_string(at));
  }

  // Truncations at several depths, including inside the CRC prefix.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, encoded.size() / 2,
        encoded.size() - 1}) {
    const std::vector<std::byte> truncated(encoded.begin(),
                                           encoded.begin() +
                                               static_cast<std::ptrdiff_t>(keep));
    expect_corruption(used, truncated, 64, out,
                      "truncated to " + std::to_string(keep));
  }

  // Wrong raw size: the decoder knows the chunk's exact decoded length.
  std::vector<std::byte> short_out(raw.size() - 64);
  expect_corruption(used, encoded, 64, short_out, "short output span");

  // Raw passthrough with a length mismatch is equally malformed.
  std::vector<std::byte> verbatim(raw);
  expect_corruption(codec::Codec::kRaw, verbatim, 64, short_out,
                    "raw passthrough length mismatch");
}

// ---------------------------------------------------------------------------
// ChunkMap
// ---------------------------------------------------------------------------

codec::ChunkMap three_chunk_map() {
  codec::ChunkMap map(16);
  map.add({.raw_offset = 0, .device_offset = 0, .raw_size = 100,
           .comp_size = 40, .codec = codec::Codec::kLz});
  map.add({.raw_offset = 100, .device_offset = 40, .raw_size = 100,
           .comp_size = 60, .codec = codec::Codec::kLz});
  map.add({.raw_offset = 200, .device_offset = 100, .raw_size = 100,
           .comp_size = 100, .codec = codec::Codec::kRaw});
  map.finalize();
  return map;
}

TEST(ChunkMap, FindAndDevicePosition) {
  const codec::ChunkMap map = three_chunk_map();
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.raw_end(), 300u);
  EXPECT_EQ(map.raw_bytes(), 300u);
  EXPECT_EQ(map.compressed_bytes(), 200u);

  EXPECT_EQ(map.find(0), 0u);
  EXPECT_EQ(map.find(99), 0u);
  EXPECT_EQ(map.find(100), 1u);
  EXPECT_EQ(map.find(299), 2u);
  EXPECT_EQ(map.find(300), map.size());

  // Exact on chunk boundaries — the only places schedules start and end.
  EXPECT_EQ(map.device_position(0), 0u);
  EXPECT_EQ(map.device_position(100), 40u);
  EXPECT_EQ(map.device_position(200), 100u);
  // Clamped proportionally inside a chunk: never past the chunk's encoded
  // extent, never before its start.
  const std::uint64_t mid = map.device_position(50);
  EXPECT_GE(mid, 0u);
  EXPECT_LE(mid, 40u);
  // Identity past the mapped range (raw == device out there).
  EXPECT_EQ(map.device_position(300), 300u);
  EXPECT_EQ(map.device_position(1000), 1000u);
}

TEST(ChunkMap, FinalizeRejectsMalformedExtents) {
  codec::ChunkMap overlap(16);
  overlap.add({.raw_offset = 0, .device_offset = 0, .raw_size = 100,
               .comp_size = 50, .codec = codec::Codec::kLz});
  overlap.add({.raw_offset = 80, .device_offset = 50, .raw_size = 100,
               .comp_size = 50, .codec = codec::Codec::kLz});
  EXPECT_THROW(overlap.finalize(), std::invalid_argument);

  codec::ChunkMap zero(16);
  zero.add({.raw_offset = 0, .device_offset = 0, .raw_size = 0,
            .comp_size = 10, .codec = codec::Codec::kLz});
  EXPECT_THROW(zero.finalize(), std::invalid_argument);

  codec::ChunkMap unfinalized(16);
  unfinalized.add({.raw_offset = 0, .device_offset = 0, .raw_size = 16,
                   .comp_size = 16, .codec = codec::Codec::kRaw});
  EXPECT_THROW((void)unfinalized.find(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// ChunkDecodingDevice
// ---------------------------------------------------------------------------

struct EncodedStore {
  std::vector<std::byte> raw;  ///< the raw address space
  std::unique_ptr<io::MemoryBlockDevice> device =
      std::make_unique<io::MemoryBlockDevice>(512);  ///< encoded chunks
  codec::ChunkMap map{64};
};

/// Encodes `chunks` structured chunks of `chunk_raw` bytes each onto a
/// memory device, building the raw↔device map as the v4 builder would.
EncodedStore make_encoded_store(std::size_t chunks, std::size_t chunk_raw) {
  EncodedStore store;
  std::uint64_t device_cursor = 0;
  std::vector<std::byte> encoded;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::vector<std::byte> chunk = structured_buffer(chunk_raw / 64, 64);
    // Stamp the chunk index so chunks are distinguishable.
    for (std::size_t i = 0; i < chunk.size(); i += 64) {
      chunk[i] = static_cast<std::byte>(c);
    }
    const codec::Codec used = codec::encode_chunk(chunk, 64, encoded);
    store.device->write(device_cursor, encoded);
    store.map.add({.raw_offset = store.raw.size(),
                   .device_offset = device_cursor,
                   .raw_size = static_cast<std::uint32_t>(chunk.size()),
                   .comp_size = static_cast<std::uint32_t>(encoded.size()),
                   .codec = used});
    store.raw.insert(store.raw.end(), chunk.begin(), chunk.end());
    device_cursor += encoded.size();
  }
  store.map.finalize();
  store.device->reset_stats();
  return store;
}

TEST(ChunkDecodingDevice, ServesTheRawAddressSpaceBitExactly) {
  EncodedStore store = make_encoded_store(8, 4096);
  codec::ChunkDecodingDevice decoder(*store.device, store.map);
  ASSERT_EQ(decoder.size(), store.raw.size());

  const auto check_range = [&](std::uint64_t offset, std::size_t length) {
    std::vector<std::byte> out(length);
    decoder.read(offset, out);
    ASSERT_EQ(std::memcmp(out.data(), store.raw.data() + offset, length), 0)
        << "offset " << offset << " length " << length;
  };
  check_range(0, store.raw.size());        // everything
  check_range(0, 4096);                    // exactly one chunk
  check_range(4096, 4096);                 // second chunk
  check_range(4000, 200);                  // straddles a boundary
  check_range(100, 64);                    // interior, unaligned
  check_range(2048, 3 * 4096);             // mid-chunk to mid-chunk
  check_range(store.raw.size() - 64, 64);  // tail

  // Decode CPU accumulated, both per-device and in the thread ledger.
  EXPECT_GT(decoder.decode_cpu_seconds(), 0.0);
  EXPECT_GT(codec::thread_decode_cpu_seconds(), 0.0);
}

TEST(ChunkDecodingDevice, StatsReportPhysicalCompressedTraffic) {
  EncodedStore store = make_encoded_store(8, 4096);
  codec::ChunkDecodingDevice decoder(*store.device, store.map);

  decoder.reset_stats();
  std::vector<std::byte> out(store.raw.size());
  decoder.read(0, out);
  // The decorator's stats ARE the inner device's: compressed traffic, the
  // quantity the disk model charges. Structured chunks compress, so the
  // physical bytes must come in under the raw request (block-granular
  // reads add slack; the compressed payload is well under half the raw).
  EXPECT_EQ(&decoder.stats(), &store.device->stats());
  EXPECT_GT(decoder.stats().bytes_read, 0u);
  EXPECT_LT(decoder.stats().bytes_read, store.raw.size());
  EXPECT_LE(store.map.compressed_bytes(), decoder.stats().bytes_read);
}

TEST(ChunkDecodingDevice, PropagatesCorruptionAsRetriableFault) {
  EncodedStore store = make_encoded_store(4, 4096);
  codec::ChunkDecodingDevice decoder(*store.device, store.map);

  // Corrupt one byte of chunk 2's encoded bytes on the inner device.
  const codec::ChunkExtent extent = store.map.extents()[2];
  ASSERT_EQ(extent.codec, codec::Codec::kLz);
  std::array<std::byte, 1> original;
  store.device->read(extent.device_offset + 5, original);
  const std::array<std::byte, 1> flipped = {original[0] ^ std::byte{0x10}};
  store.device->write(extent.device_offset + 5, flipped);

  std::vector<std::byte> out(4096);
  try {
    decoder.read(extent.raw_offset, out);
    FAIL() << "decode of a corrupted chunk succeeded";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kCorruption);
    EXPECT_TRUE(error.retriable());
  }
  // Clean chunks keep working, and restoring the byte heals the store —
  // exactly the in-transit-corruption retry story.
  decoder.read(0, out);
  store.device->write(extent.device_offset + 5, original);
  decoder.read(extent.raw_offset, out);
  EXPECT_EQ(std::memcmp(out.data(), store.raw.data() + extent.raw_offset, 4096),
            0);
}

// ---------------------------------------------------------------------------
// v4 index builds: byte identity, serialization, chunk maps, streams
// ---------------------------------------------------------------------------

core::VolumeU8 test_volume() {
  data::RmConfig config;
  config.dims = {32, 32, 28};
  config.seed = 777;
  return data::generate_rm_timestep(config, 170);
}

struct BuiltIndex {
  std::vector<std::unique_ptr<io::MemoryBlockDevice>> devices;
  index::CompactTreeBuilder::Result result;
};

BuiltIndex build_index(const core::VolumeU8& volume, std::size_t nodes,
                       codec::Codec compression, std::size_t replication = 1) {
  BuiltIndex built;
  std::vector<io::BlockDevice*> pointers;
  for (std::size_t i = 0; i < nodes; ++i) {
    built.devices.push_back(std::make_unique<io::MemoryBlockDevice>(512));
    pointers.push_back(built.devices.back().get());
  }
  const auto source = metacell::make_source(volume, 9);
  placement::PlacementConfig placement;
  placement.replication = replication;
  built.result = index::CompactTreeBuilder::build(
      source->scan(), *source, pointers, placement, compression);
  return built;
}

std::vector<std::byte> device_contents(io::MemoryBlockDevice& device) {
  std::vector<std::byte> bytes(device.size());
  if (!bytes.empty()) device.read(0, bytes);
  return bytes;
}

TEST(V4Index, NoneStaysByteIdenticalToLegacyLayouts) {
  const core::VolumeU8 volume = test_volume();
  // k=1 (v2) and k=2 (v3): explicit kRaw must take the legacy path
  // untouched — same device bytes, same serialized trees.
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2}}) {
    BuiltIndex legacy = build_index(volume, 3, codec::Codec::kRaw, replication);
    BuiltIndex none = build_index(volume, 3, codec::Codec::kRaw, replication);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(device_contents(*legacy.devices[i]),
                device_contents(*none.devices[i]))
          << "k=" << replication << " node " << i;
      EXPECT_EQ(legacy.result.trees[i].to_bytes(), none.result.trees[i].to_bytes())
          << "k=" << replication << " node " << i;
      EXPECT_EQ(none.result.trees[i].format_version(),
                replication > 1 ? 3u : 2u);
      EXPECT_FALSE(none.result.trees[i].compressed());
    }
    EXPECT_EQ(none.result.compressed_bytes_written, none.result.bytes_written);
  }
}

TEST(V4Index, LzSerializationRoundTripsLosslessly) {
  const core::VolumeU8 volume = test_volume();
  for (const std::size_t replication : {std::size_t{1}, std::size_t{2}}) {
    BuiltIndex built = build_index(volume, 3, codec::Codec::kLz, replication);
    EXPECT_LT(built.result.compressed_bytes_written, built.result.bytes_written)
        << "RM data must actually compress";
    for (const index::CompactIntervalTree& tree : built.result.trees) {
      if (tree.entry_count() == 0) continue;
      EXPECT_TRUE(tree.compressed());
      EXPECT_EQ(tree.codec(), codec::Codec::kLz);
      EXPECT_EQ(tree.format_version(), 4u);
      EXPECT_EQ(tree.chunk_comp_sizes().size(), tree.chunk_crcs().size());
      EXPECT_EQ(tree.chunk_codecs().size(), tree.chunk_crcs().size());
      EXPECT_LE(tree.compressed_payload_bytes(), tree.raw_payload_bytes());

      const std::vector<std::byte> bytes = tree.to_bytes();
      const index::CompactIntervalTree reloaded =
          index::CompactIntervalTree::from_bytes(bytes);
      EXPECT_EQ(reloaded.to_bytes(), bytes);
      EXPECT_EQ(reloaded.format_version(), 4u);
      EXPECT_EQ(reloaded.replication(), replication);
      EXPECT_EQ(reloaded.device_base(), tree.device_base());
      EXPECT_EQ(reloaded.raw_payload_bytes(), tree.raw_payload_bytes());
      EXPECT_EQ(reloaded.compressed_payload_bytes(),
                tree.compressed_payload_bytes());
    }
  }
}

TEST(V4Index, ChunkMapsCoverTheWholeStore) {
  const core::VolumeU8 volume = test_volume();
  BuiltIndex built = build_index(volume, 2, codec::Codec::kLz);
  const std::vector<codec::ChunkMap> maps =
      index::build_chunk_maps(built.result.trees);
  ASSERT_EQ(maps.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const index::CompactIntervalTree& tree = built.result.trees[i];
    ASSERT_FALSE(maps[i].empty());
    EXPECT_EQ(maps[i].record_size(), tree.record_size());
    EXPECT_EQ(maps[i].raw_bytes(), tree.raw_payload_bytes());
    EXPECT_EQ(maps[i].compressed_bytes(), tree.compressed_payload_bytes());
    // The device holds exactly the encoded chunks, back to back.
    EXPECT_EQ(maps[i].compressed_bytes(), built.devices[i]->size());
  }
  // Uncompressed trees contribute nothing: no decode layer needed.
  BuiltIndex plain = build_index(volume, 2, codec::Codec::kRaw);
  for (const codec::ChunkMap& map : index::build_chunk_maps(plain.result.trees)) {
    EXPECT_TRUE(map.empty());
  }
}

/// CRC of the exact record bytes a stream delivers, in delivery order.
std::uint32_t drain_crc(index::RetrievalStream stream) {
  std::uint32_t state = util::crc32_init();
  while (std::optional<index::RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      state = util::crc32_update(state, batch->record(r));
    }
  }
  return util::crc32_final(state);
}

TEST(V4Index, CompressedStreamsDeliverTheSameRecordsForLessPhysicalIo) {
  const core::VolumeU8 volume = test_volume();
  BuiltIndex plain = build_index(volume, 1, codec::Codec::kRaw);
  BuiltIndex packed = build_index(volume, 1, codec::Codec::kLz);
  const std::vector<codec::ChunkMap> maps =
      index::build_chunk_maps(packed.result.trees);
  codec::ChunkDecodingDevice decoder(*packed.devices[0], maps[0]);

  for (const float isovalue : {60.0f, 128.0f, 190.0f}) {
    const index::CompactIntervalTree& raw_tree = plain.result.trees[0];
    const index::CompactIntervalTree& lz_tree = packed.result.trees[0];
    plain.devices[0]->reset_stats();
    packed.devices[0]->reset_stats();

    const std::uint32_t expected =
        drain_crc(index::open_stream(raw_tree, isovalue, *plain.devices[0]));
    // Build the stream as the engine does: raw-space plan over the
    // decoder, chunk map in the directory so the coalescing gap budget is
    // measured in device (encoded) bytes.
    for (const std::size_t depth : {std::size_t{0}, std::size_t{4}}) {
      index::RetrievalOptions options;
      options.queue_depth = depth;
      index::RetrievalStream stream(
          lz_tree.plan(isovalue), lz_tree.scalar_kind(), lz_tree.record_size(),
          decoder, options,
          index::BrickDirectory{lz_tree.bricks(), lz_tree.chunk_crcs(),
                                {}, &maps[0]});
      const double decode_before = stream.decode_cpu_seconds();
      EXPECT_EQ(drain_crc(std::move(stream)), expected)
          << "isovalue " << isovalue << " depth " << depth;
      (void)decode_before;
    }
    // Physical traffic: the compressed store read fewer device bytes for
    // the same records (two lz passes above vs one raw pass — halve it).
    EXPECT_LT(packed.devices[0]->stats().bytes_read / 2,
              plain.devices[0]->stats().bytes_read)
        << "isovalue " << isovalue;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the engine across codecs, caches, faults, and failover
// ---------------------------------------------------------------------------

constexpr float kIsovalue = 128.0f;

core::VolumeU8 golden_volume() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  config.seed = 777;
  return data::generate_rm_timestep(config, 170);
}

/// Canonical content hash of a triangle soup (same canonicalization as
/// golden_mesh_test): quantize, sort, CRC32 — partitioning, codec, and
/// emission order cannot matter.
std::uint32_t canonical_crc(const extract::TriangleSoup& soup) {
  using Quantized = std::array<std::int64_t, 9>;
  std::vector<Quantized> rows;
  rows.reserve(soup.size());
  for (const extract::Triangle& triangle : soup.triangles()) {
    const core::Vec3* vertices[3] = {&triangle.a, &triangle.b, &triangle.c};
    Quantized row;
    std::size_t at = 0;
    for (const core::Vec3* v : vertices) {
      row[at++] = std::llround(static_cast<double>(v->x) * 4096.0);
      row[at++] = std::llround(static_cast<double>(v->y) * 4096.0);
      row[at++] = std::llround(static_cast<double>(v->z) * 4096.0);
    }
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end());
  std::uint32_t state = util::crc32_init();
  for (const Quantized& row : rows) {
    std::array<std::byte, sizeof(Quantized)> bytes;
    std::memcpy(bytes.data(), row.data(), sizeof(Quantized));
    state = util::crc32_update(state, bytes);
  }
  return util::crc32_final(state);
}

std::uint32_t reference_crc(const core::VolumeU8& volume) {
  extract::TriangleSoup reference;
  extract::extract_volume(volume, kIsovalue, reference);
  return canonical_crc(reference);
}

struct Deployed {
  std::unique_ptr<parallel::Cluster> cluster;
  pipeline::PreprocessResult prep;
};

Deployed deploy(const core::VolumeU8& volume, std::size_t nodes,
                codec::Codec compression, std::size_t replication = 1) {
  Deployed deployed;
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  deployed.cluster = std::make_unique<parallel::Cluster>(config);
  const auto source = metacell::make_source(volume, 9);
  pipeline::PreprocessConfig prep_config;
  prep_config.compression = compression;
  prep_config.placement.replication = replication;
  deployed.prep = pipeline::preprocess(*source, *deployed.cluster, prep_config);
  return deployed;
}

std::uint32_t run_crc(Deployed& deployed, pipeline::QueryOptions options,
                      pipeline::QueryReport* report_out = nullptr) {
  options.render = false;
  options.keep_triangles = true;
  pipeline::QueryEngine engine(*deployed.cluster, deployed.prep);
  pipeline::QueryReport report = engine.run(kIsovalue, options);
  const std::uint32_t crc = canonical_crc(*report.triangles_out);
  if (report_out != nullptr) *report_out = std::move(report);
  return crc;
}

TEST(CodecEndToEnd, MeshBitIdenticalAcrossCodecAndQueueDepth) {
  const core::VolumeU8 volume = golden_volume();
  const std::uint32_t golden = reference_crc(volume);

  Deployed none = deploy(volume, 3, codec::Codec::kRaw);
  pipeline::QueryReport none_report;
  EXPECT_EQ(run_crc(none, {}, &none_report), golden);
  EXPECT_EQ(none_report.total_decode_cpu_seconds(), 0.0);

  Deployed lz = deploy(volume, 3, codec::Codec::kLz);
  EXPECT_LT(lz.prep.compressed_bytes_written, lz.prep.bytes_written);
  for (const std::size_t depth : {std::size_t{0}, std::size_t{4}}) {
    pipeline::QueryOptions options;
    options.retrieval.queue_depth = depth;
    pipeline::QueryReport report;
    EXPECT_EQ(run_crc(lz, options, &report), golden) << "depth " << depth;
    EXPECT_FALSE(report.degraded) << "depth " << depth;
    // Decode-on-fetch is visible and charged to the I/O side.
    EXPECT_GT(report.total_decode_cpu_seconds(), 0.0) << "depth " << depth;
    // Physical device traffic shrank versus the uncompressed run.
    std::uint64_t lz_bytes = 0, none_bytes = 0;
    for (const auto& node : report.nodes) lz_bytes += node.io.bytes_read;
    for (const auto& node : none_report.nodes) none_bytes += node.io.bytes_read;
    EXPECT_LT(lz_bytes, none_bytes) << "depth " << depth;
  }
}

TEST(CodecEndToEnd, SharedCacheServesDecodedFramesColdAndWarm) {
  const core::VolumeU8 volume = golden_volume();
  const std::uint32_t golden = reference_crc(volume);
  Deployed lz = deploy(volume, 2, codec::Codec::kLz);

  // Decode-on-fetch under the pools: install the raw↔device maps, then
  // enable the shared cache (the order the transport requires).
  lz.cluster->set_chunk_maps(index::build_chunk_maps(lz.prep.trees));
  lz.cluster->enable_shared_cache(4096);

  pipeline::QueryOptions options;
  options.use_shared_cache = true;

  pipeline::QueryReport cold, warm;
  EXPECT_EQ(run_crc(lz, options, &cold), golden);
  EXPECT_EQ(run_crc(lz, options, &warm), golden);

  // Cold run misses to the device (compressed traffic); the warm run's
  // frames are already decoded in the pool, so physical reads vanish.
  std::uint64_t cold_bytes = 0, warm_bytes = 0;
  for (const auto& node : cold.nodes) cold_bytes += node.io.bytes_read;
  for (const auto& node : warm.nodes) warm_bytes += node.io.bytes_read;
  EXPECT_GT(cold_bytes, 0u);
  EXPECT_LT(warm_bytes, cold_bytes);
  // Warm frames are decoded frames: no second decode either.
  EXPECT_LT(warm.total_decode_cpu_seconds(),
            cold.total_decode_cpu_seconds() + 1e-12);

  // Dropping the caches makes the next run cold again — and identical.
  lz.cluster->drop_caches();
  pipeline::QueryReport recold;
  EXPECT_EQ(run_crc(lz, options, &recold), golden);
  std::uint64_t recold_bytes = 0;
  for (const auto& node : recold.nodes) recold_bytes += node.io.bytes_read;
  EXPECT_EQ(recold_bytes, cold_bytes);
}

TEST(CodecEndToEnd, InjectedCorruptionRetriesToTheSameMesh) {
  const core::VolumeU8 volume = golden_volume();
  const std::uint32_t golden = reference_crc(volume);
  Deployed lz = deploy(volume, 2, codec::Codec::kLz);

  // Corruption lands on the *compressed* bytes; the decoder classifies the
  // damage as a retriable checksum-class fault and the stream's retry
  // machinery re-reads — same taxonomy as a raw CRC mismatch.
  io::FaultConfig faults;
  faults.seed = 11;
  faults.read_corruption_rate = 0.05;
  // Pin the schedule too: each node's first read arrives corrupted and its
  // retry hits a transient failure, so both fault classes are exercised
  // deterministically even when the rate draws nothing on a small store.
  faults.corrupt_reads = {0};
  faults.fail_reads = {1};
  pipeline::QueryOptions options;
  options.inject_faults = faults;

  pipeline::QueryReport report;
  EXPECT_EQ(run_crc(lz, options, &report), golden);
  EXPECT_FALSE(report.degraded);
  const index::RetrievalFaults total = report.total_retrieval_faults();
  EXPECT_GT(total.checksum_failures + total.transient_errors, 0u);
  EXPECT_GT(total.retries, 0u);
}

TEST(CodecEndToEnd, DeadNodeFailsOverOnReplicatedCompressedStore) {
  const core::VolumeU8 volume = golden_volume();
  const std::uint32_t golden = reference_crc(volume);
  Deployed lz = deploy(volume, 4, codec::Codec::kLz, /*replication=*/2);

  pipeline::QueryOptions options;
  options.dead_nodes = {2};
  pipeline::QueryReport report;
  EXPECT_EQ(run_crc(lz, options, &report), golden);
  EXPECT_TRUE(report.degraded);
  EXPECT_GT(report.total_decode_cpu_seconds(), 0.0);
}

TEST(CodecServe, ConcurrentQueriesDecodeThroughTheSharedPools) {
  const core::VolumeU8 volume = golden_volume();
  Deployed lz = deploy(volume, 2, codec::Codec::kLz);

  // Per-isovalue reference triangle counts.
  std::vector<core::ValueKey> isovalues = {60.0f, 100.0f, 140.0f, 180.0f,
                                           60.0f, 100.0f, 140.0f, 180.0f};
  std::vector<std::uint64_t> expected;
  for (const core::ValueKey isovalue : isovalues) {
    extract::TriangleSoup reference;
    extract::extract_volume(volume, isovalue, reference);
    expected.push_back(reference.size());
  }

  serve::ServeOptions options;
  options.max_concurrent_queries = 8;  // the 8-way serving case
  options.cache_capacity_blocks = 4096;
  options.query.render = false;
  serve::QueryServer server(*lz.cluster, lz.prep, options);
  const std::vector<pipeline::QueryReport> reports = server.serve(isovalues);
  ASSERT_EQ(reports.size(), isovalues.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].total_triangles(), expected[i]) << "query " << i;
    EXPECT_FALSE(reports[i].degraded) << "query " << i;
  }
  // The repeated isovalues hit warm decoded frames: the pool ledger shows
  // hits, and the single-flight identity holds.
  const io::CacheCounters counters = server.cache_counters();
  EXPECT_GT(counters.hits, 0u);
  EXPECT_EQ(counters.hits + counters.misses + counters.waits, counters.fetches);
}

TEST(CodecTimeVarying, CompressedStepsShareOneRawAddressSpace) {
  data::RmConfig rm;
  rm.dims = {32, 32, 28};
  rm.seed = 777;
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = 2;
  cluster_config.in_memory = true;
  parallel::Cluster cluster(cluster_config);

  pipeline::TimeVaryingEngine engine(
      cluster, [&rm](int step) { return data::generate_rm_timestep(rm, step); },
      9, codec::Codec::kLz);
  engine.preprocess_steps(100, 2);

  pipeline::QueryOptions options;
  options.render = false;
  const auto check_steps = [&](bool expect_decode) {
    for (const int step : {100, 101}) {
      const auto volume = data::generate_rm_timestep(rm, step);
      extract::TriangleSoup reference;
      extract::extract_volume(volume, kIsovalue, reference);
      const pipeline::QueryReport report =
          engine.query(step, kIsovalue, options);
      EXPECT_EQ(report.total_triangles(), reference.size()) << "step " << step;
      if (expect_decode) {
        EXPECT_GT(report.total_decode_cpu_seconds(), 0.0) << "step " << step;
      }
    }
  };
  for (const auto& step : engine.steps()) {
    EXPECT_TRUE(engine.step_data(step).trees.front().compressed());
  }
  check_steps(/*expect_decode=*/true);  // raw path: decode on every read

  // The union chunk maps install on the cluster with the shared cache;
  // both steps' decoded frames share the per-node pools.
  engine.enable_shared_cache(4096);
  check_steps(/*expect_decode=*/true);   // cold pools: misses decode
  check_steps(/*expect_decode=*/false);  // warm pools: frames pre-decoded

  // Compressed steps must all be preprocessed before the cache goes up:
  // a later step could not extend the installed union maps.
  EXPECT_THROW(engine.preprocess_steps(102, 1), std::logic_error);
}

}  // namespace
}  // namespace oociso
