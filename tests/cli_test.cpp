// End-to-end tests of the oociso_cli binary (tools/oociso_cli.cpp),
// spawned as a real subprocess: flag validation must reject unknown flags
// with exit code 2 + usage text (the silent-typo bug this suite pins), and
// `serve --trace/--metrics` must produce a Chrome-loadable trace whose
// per-query span totals reconcile with the exported metrics counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "util/json.h"
#include "util/temp_dir.h"

namespace oociso {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

/// Runs the CLI with `arguments`, capturing output and the real exit code.
/// `env_prefix` prepends shell-style VAR=value assignments (e.g.
/// "OOCISO_DISABLE_SIMD=1 ") so a test can shrink the binary's CPU-feature
/// view regardless of the host it runs on.
RunResult run_cli(const std::string& arguments, const std::string& log_path,
                  const std::string& env_prefix = "") {
  const std::string command = env_prefix + std::string(OOCISO_CLI_PATH) +
                              " " + arguments + " > " + log_path + " 2>&1";
  const int status = std::system(command.c_str());
  RunResult result;
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  std::ifstream in(log_path);
  std::ostringstream out;
  out << in.rdbuf();
  result.output = out.str();
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CliTest : public ::testing::Test {
 protected:
  util::TempDir dir_{"oociso-cli-test"};
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_.path() / name).string();
  }
};

TEST_F(CliTest, NoCommandPrintsUsage) {
  const RunResult result = run_cli("", path("log"));
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagsAreRejectedPerSubcommand) {
  for (const std::string command :
       {"query --isovlaue 100", "serve --concurency 4",
        "preprocess --volme x.oocv", "generate --dim 32",
        "query --storage /tmp/x --bogus"}) {
    const RunResult result = run_cli(command, path("log"));
    EXPECT_EQ(result.exit_code, 2) << command;
    EXPECT_NE(result.output.find("error: unknown flag"), std::string::npos)
        << command;
    EXPECT_NE(result.output.find("usage:"), std::string::npos) << command;
  }
}

TEST_F(CliTest, KnownFlagWithBadValueStillFailsLoudly) {
  const RunResult result =
      run_cli("query --storage /nonexistent --iso not-a-number", path("log"));
  // Malformed values on known flags are usage errors: exit 2 + usage text,
  // not the generic exit-1 error path.
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("error:"), std::string::npos);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, MalformedNumericFlagsAreUsageErrors) {
  // Non-numeric text, trailing garbage, values outside the documented
  // range, and overflow must all take the usage path (exit 2), never parse
  // as garbage or crash through a size_t conversion.
  for (const std::string command : {
           "query --storage /nonexistent --queue-depth banana",
           "query --storage /nonexistent --queue-depth 8x",
           "query --storage /nonexistent --queue-depth -3",
           "query --storage /nonexistent --queue-depth 99999",
           "query --storage /nonexistent --queue-depth 99999999999999999999",
           "query --storage /nonexistent --readahead -1",
           "query --storage /nonexistent --coalesce-gap -2",
           "query --storage /nonexistent --coalesce-gap huge",
           "serve --storage /nonexistent --isos 90 --queue-depth -1",
           "serve --storage /nonexistent --isos 90 --readahead nope",
       }) {
    const RunResult result = run_cli(command, path("log"));
    EXPECT_EQ(result.exit_code, 2) << command << "\n" << result.output;
    EXPECT_NE(result.output.find("error: flag --"), std::string::npos)
        << command << "\n" << result.output;
    EXPECT_NE(result.output.find("usage:"), std::string::npos) << command;
  }
}

TEST_F(CliTest, ServeTraceReconcilesWithMetrics) {
  // generate -> preprocess -> serve, all through the real binary.
  const std::string volume = path("volume.oocv");
  ASSERT_EQ(run_cli("generate --dims 40 --seed 7 --out " + volume, path("g"))
                .exit_code,
            0);
  const std::string storage = path("storage");
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + storage +
                        " --nodes 2",
                    path("p"))
                .exit_code,
            0);

  const std::string trace_path = path("trace.json");
  const std::string metrics_path = path("metrics.json");
  const RunResult serve = run_cli(
      "serve --storage " + storage +
          " --nodes 2 --isos 90,120,150 --repeat 2 --concurrency 3 --trace " +
          trace_path + " --metrics " + metrics_path,
      path("s"));
  ASSERT_EQ(serve.exit_code, 0) << serve.output;

  // The trace is valid Chrome JSON with one pid per executed query, each
  // carrying an admission.wait span and one node.extract span per node.
  const util::JsonValue trace = util::parse_json(slurp(trace_path));
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  const util::JsonValue::Array& events = trace.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  constexpr std::size_t kQueries = 6;  // 3 isovalues x 2 passes
  std::size_t admission_spans = 0;
  std::map<std::int64_t, std::size_t> extract_spans_per_pid;
  std::uint64_t attributed_blocks = 0;
  for (const util::JsonValue& event : events) {
    const std::string& name = event.at("name").as_string();
    if (name == "admission.wait") ++admission_spans;
    if (name != "node.extract") continue;
    ++extract_spans_per_pid[static_cast<std::int64_t>(
        event.at("pid").as_number())];
    const util::JsonValue& args = event.at("args");
    attributed_blocks +=
        static_cast<std::uint64_t>(args.at("cache_hit_blocks").as_number()) +
        static_cast<std::uint64_t>(args.at("cache_miss_blocks").as_number()) +
        static_cast<std::uint64_t>(args.at("cache_wait_blocks").as_number());
  }
  EXPECT_EQ(admission_spans, kQueries);
  EXPECT_EQ(extract_spans_per_pid.size(), kQueries);
  for (const auto& [pid, count] : extract_spans_per_pid) {
    EXPECT_EQ(count, 2u) << "pid " << pid;  // one extract span per node
  }

  // Reconciliation: the queries' per-span cache attribution sums exactly
  // to the shared pools' fetch ledger in the exported metrics, and the
  // ledger identity holds.
  const util::JsonValue metrics = util::parse_json(slurp(metrics_path));
  const util::JsonValue& counters = metrics.at("counters");
  std::uint64_t fetches = 0, hits = 0, misses = 0, waits = 0;
  for (int node = 0; node < 2; ++node) {
    const std::string prefix = "node" + std::to_string(node) + ".cache.";
    fetches += static_cast<std::uint64_t>(
        counters.at(prefix + "fetches").as_number());
    hits +=
        static_cast<std::uint64_t>(counters.at(prefix + "hits").as_number());
    misses += static_cast<std::uint64_t>(
        counters.at(prefix + "misses").as_number());
    waits +=
        static_cast<std::uint64_t>(counters.at(prefix + "waits").as_number());
  }
  EXPECT_EQ(hits + misses + waits, fetches);
  EXPECT_EQ(attributed_blocks, fetches);
  EXPECT_EQ(
      static_cast<std::uint64_t>(counters.at("serve.queries").as_number()),
      kQueries);
}

TEST_F(CliTest, CompressedPreprocessRoundTripsThroughInfoAndQuery) {
  const std::string volume = path("volume.oocv");
  ASSERT_EQ(run_cli("generate --dims 40 --seed 7 --out " + volume, path("g"))
                .exit_code,
            0);

  // Unknown codec names are usage errors (exit 2 + usage), not typos that
  // silently fall back to an uncompressed store.
  const RunResult bad =
      run_cli("preprocess --volume " + volume + " --storage " + path("bad") +
                  " --nodes 2 --compression zstd",
              path("z"));
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("error: unknown --compression"), std::string::npos);
  EXPECT_NE(bad.output.find("usage:"), std::string::npos);

  // One store per codec; both reattach through the bundle loader.
  const std::string plain = path("plain");
  const std::string packed = path("packed");
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + plain +
                        " --nodes 2",
                    path("p0"))
                .exit_code,
            0);
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + packed +
                        " --nodes 2 --compression lz",
                    path("p1"))
                .exit_code,
            0);

  // `info` surfaces the v4 metadata: version, codec, chunk count, and both
  // byte totals (the encoded row only exists on a compressed store).
  const RunResult info = run_cli("info --storage " + packed, path("i"));
  ASSERT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("index version"), std::string::npos);
  EXPECT_NE(info.output.find("4"), std::string::npos);
  EXPECT_NE(info.output.find("compression"), std::string::npos);
  EXPECT_NE(info.output.find("lz"), std::string::npos);
  EXPECT_NE(info.output.find("chunks"), std::string::npos);
  EXPECT_NE(info.output.find("raw payload"), std::string::npos);
  EXPECT_NE(info.output.find("encoded payload"), std::string::npos);

  const RunResult plain_info = run_cli("info --storage " + plain, path("i0"));
  ASSERT_EQ(plain_info.exit_code, 0) << plain_info.output;
  EXPECT_NE(plain_info.output.find("none"), std::string::npos);
  EXPECT_EQ(plain_info.output.find("encoded payload"), std::string::npos);

  // The same query decodes on fetch to the same extraction: the counts in
  // the report line ("N active metacells, M triangles") must match the
  // uncompressed store's verbatim (the line's timing tail is measured, so
  // only the deterministic prefix is compared).
  const RunResult q_plain =
      run_cli("query --storage " + plain + " --nodes 2 --iso 120", path("q0"));
  const RunResult q_packed =
      run_cli("query --storage " + packed + " --nodes 2 --iso 120", path("q1"));
  ASSERT_EQ(q_plain.exit_code, 0) << q_plain.output;
  ASSERT_EQ(q_packed.exit_code, 0) << q_packed.output;
  const auto counts_prefix = [](const std::string& output) {
    const std::size_t at = output.find(" triangles");
    EXPECT_NE(at, std::string::npos) << output;
    const std::size_t start = output.rfind('\n', at) + 1;
    return output.substr(start, at - start);
  };
  const std::string expected = counts_prefix(q_plain.output);
  EXPECT_NE(expected.find("isovalue 120"), std::string::npos);
  EXPECT_EQ(counts_prefix(q_packed.output), expected);
}

TEST_F(CliTest, HierarchyInfoAndProgressiveQueryRoundTrip) {
  const std::string volume = path("volume.oocv");
  ASSERT_EQ(run_cli("generate --dims 40 --seed 7 --out " + volume, path("g"))
                .exit_code,
            0);

  // --levels outside [1, 16] is a usage error, caught before any store is
  // written.
  const RunResult bad =
      run_cli("preprocess --volume " + volume + " --storage " + path("bad") +
                  " --nodes 2 --levels 0",
              path("z"));
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.output.find("error: flag --levels"), std::string::npos);
  EXPECT_NE(bad.output.find("usage:"), std::string::npos);

  // One flat store, one with two coarse mip levels. The leveled preprocess
  // summary must report what it appended.
  const std::string flat = path("flat");
  const std::string leveled = path("leveled");
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + flat +
                        " --nodes 2",
                    path("p0"))
                .exit_code,
            0);
  const RunResult prep = run_cli("preprocess --volume " + volume +
                                     " --storage " + leveled +
                                     " --nodes 2 --levels 3",
                                 path("p1"));
  ASSERT_EQ(prep.exit_code, 0) << prep.output;
  EXPECT_NE(prep.output.find("hierarchy: 2 coarse level(s)"),
            std::string::npos)
      << prep.output;

  // `info` surfaces the v5 metadata: version, level count, per-level
  // coarse-node rows, and the coarse-brick byte total.
  const RunResult info = run_cli("info --storage " + leveled, path("i1"));
  ASSERT_EQ(info.exit_code, 0) << info.output;
  EXPECT_NE(info.output.find("index version"), std::string::npos);
  EXPECT_NE(info.output.find("hierarchy levels"), std::string::npos);
  EXPECT_NE(info.output.find("level 1"), std::string::npos);
  EXPECT_NE(info.output.find("level 2"), std::string::npos);
  EXPECT_NE(info.output.find("coarse nodes"), std::string::npos);
  EXPECT_NE(info.output.find("coarse payload"), std::string::npos);

  // A flat store's `info` stays exactly as it was before v5 existed: no
  // hierarchy or coarse rows leak into the v2 report.
  const RunResult flat_info = run_cli("info --storage " + flat, path("i0"));
  ASSERT_EQ(flat_info.exit_code, 0) << flat_info.output;
  EXPECT_EQ(flat_info.output.find("hierarchy"), std::string::npos)
      << flat_info.output;
  EXPECT_EQ(flat_info.output.find("coarse"), std::string::npos)
      << flat_info.output;

  // --progressive refines coarsest -> level 0 and the final level's mesh
  // CRC (the last 0x token in the per-level table) matches a progressive
  // run against the flat store, which degenerates to the plain query.
  const RunResult prog = run_cli(
      "query --storage " + leveled + " --nodes 2 --iso 120 --progressive",
      path("q1"));
  ASSERT_EQ(prog.exit_code, 0) << prog.output;
  EXPECT_NE(prog.output.find("refined to level 0"), std::string::npos)
      << prog.output;
  const RunResult flat_prog = run_cli(
      "query --storage " + flat + " --nodes 2 --iso 120 --progressive",
      path("q0"));
  ASSERT_EQ(flat_prog.exit_code, 0) << flat_prog.output;
  EXPECT_NE(flat_prog.output.find("refined to level 0"), std::string::npos)
      << flat_prog.output;
  const auto final_crc = [](const std::string& output) {
    const std::size_t at = output.rfind("0x");
    EXPECT_NE(at, std::string::npos) << output;
    return output.substr(at, 10);
  };
  EXPECT_EQ(final_crc(prog.output), final_crc(flat_prog.output));

  // --max-level is one of the flags that implies --progressive, and it
  // floors refinement at the requested level.
  const RunResult floored = run_cli(
      "query --storage " + leveled + " --nodes 2 --iso 120 --max-level 1",
      path("q2"));
  ASSERT_EQ(floored.exit_code, 0) << floored.output;
  EXPECT_NE(floored.output.find("refined to level 1"), std::string::npos)
      << floored.output;
}

TEST_F(CliTest, KernelFlagValidatesAgainstTheHostCpu) {
  // Unknown ISA names are usage errors on both subcommands, caught before
  // any storage is touched.
  for (const std::string command :
       {"query --storage /nonexistent --kernel neon",
        "serve --storage /nonexistent --isos 90 --kernel fast"}) {
    const RunResult bad = run_cli(command, path("log"));
    EXPECT_EQ(bad.exit_code, 2) << command << "\n" << bad.output;
    EXPECT_NE(bad.output.find("error: unknown --kernel"), std::string::npos)
        << bad.output;
    EXPECT_NE(bad.output.find("usage:"), std::string::npos) << command;
  }

  // An ISA the CPU cannot run is also exit 2, with a message naming the
  // escape hatch. OOCISO_DISABLE_SIMD shrinks the binary's feature view to
  // scalar-only, so this branch is exercised even on an AVX2 host (and the
  // assertion holds verbatim on machines without AVX2).
  const std::string no_simd = "OOCISO_DISABLE_SIMD=1 ";
  for (const std::string isa : {"sse2", "avx2"}) {
    const RunResult unsupported = run_cli(
        "query --storage /nonexistent --kernel " + isa, path("log"), no_simd);
    EXPECT_EQ(unsupported.exit_code, 2) << unsupported.output;
    EXPECT_NE(unsupported.output.find(
                  "is not supported by this CPU (use --kernel auto)"),
              std::string::npos)
        << unsupported.output;
  }

  // `--kernel auto` and `--kernel scalar` always work, and the extraction
  // counts are ISA-independent — the report line's deterministic prefix
  // must match between a forced-scalar run, an auto run, and an auto run
  // with SIMD disabled.
  const std::string volume = path("volume.oocv");
  ASSERT_EQ(run_cli("generate --dims 40 --seed 7 --out " + volume, path("g"))
                .exit_code,
            0);
  const std::string storage = path("storage");
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + storage +
                        " --nodes 2",
                    path("p"))
                .exit_code,
            0);
  const std::string query = "query --storage " + storage +
                            " --nodes 2 --iso 120 --kernel ";
  const RunResult q_scalar = run_cli(query + "scalar", path("q0"));
  const RunResult q_auto = run_cli(query + "auto", path("q1"));
  const RunResult q_auto_no_simd = run_cli(query + "auto", path("q2"), no_simd);
  ASSERT_EQ(q_scalar.exit_code, 0) << q_scalar.output;
  ASSERT_EQ(q_auto.exit_code, 0) << q_auto.output;
  ASSERT_EQ(q_auto_no_simd.exit_code, 0) << q_auto_no_simd.output;
  const auto counts_prefix = [](const std::string& output) {
    const std::size_t at = output.find(" triangles");
    EXPECT_NE(at, std::string::npos) << output;
    const std::size_t start = output.rfind('\n', at) + 1;
    return output.substr(start, at - start);
  };
  const std::string expected = counts_prefix(q_scalar.output);
  EXPECT_NE(expected.find("isovalue 120"), std::string::npos);
  EXPECT_EQ(counts_prefix(q_auto.output), expected);
  EXPECT_EQ(counts_prefix(q_auto_no_simd.output), expected);
}

TEST_F(CliTest, QueryTraceIsValidJson) {
  const std::string volume = path("volume.oocv");
  ASSERT_EQ(run_cli("generate --dims 40 --seed 7 --out " + volume, path("g"))
                .exit_code,
            0);
  const std::string storage = path("storage");
  ASSERT_EQ(run_cli("preprocess --volume " + volume + " --storage " + storage +
                        " --nodes 2",
                    path("p"))
                .exit_code,
            0);
  const std::string trace_path = path("trace.json");
  const RunResult query = run_cli("query --storage " + storage +
                                      " --nodes 2 --iso 120 --trace " +
                                      trace_path,
                                  path("q"));
  ASSERT_EQ(query.exit_code, 0) << query.output;
  const util::JsonValue trace = util::parse_json(slurp(trace_path));
  bool saw_extract = false;
  for (const util::JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "node.extract") saw_extract = true;
  }
  EXPECT_TRUE(saw_extract);
}

}  // namespace
}  // namespace oociso
