// Golden-mesh regression: for a fixed (seed, grid, isovalue) the extracted
// triangle soup — canonicalized so partitioning and emission order cannot
// matter — must hash to a pinned constant, and every engine variant must
// produce the same canonical mesh:
//   * the structured QueryEngine over the in-core compact interval tree,
//     at 1 and 3 nodes (striping must not change the multiset),
//   * a stream opened from the blocked *external* tree (same plan, same
//     records, same kernel),
//   * the in-core extract_volume reference, once per classification ISA
//     this host can dispatch (scalar always; sse2/avx2 when available —
//     the run logs which ones executed). A SIMD kernel that moved a
//     single vertex would move the hash.
// The unstructured (marching-tets) pipeline gets its own pinned golden —
// different mesh, same regression contract.
//
// Canonicalization (extract::canonical_mesh_crc) quantizes coordinates to
// 1/4096 of a lattice unit before hashing, so the hash pins the geometry
// while staying stable against last-ulp differences between optimization
// levels (e.g. fused multiply-add contraction); it would still catch any
// real kernel change.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <vector>

#include "data/rm_generator.h"
#include "extract/kernel.h"
#include "extract/marching_cubes.h"
#include "extract/mesh.h"
#include "index/compact_interval_tree.h"
#include "index/external_tree.h"
#include "index/retrieval_stream.h"
#include "io/memory_block_device.h"
#include "metacell/metacell.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "pipeline/query_engine.h"
#include "unstructured/pipeline.h"
#include "unstructured/tet_mesh.h"

namespace oociso {
namespace {

constexpr float kIsovalue = 128.0f;

std::uint32_t canonical_crc(const extract::TriangleSoup& soup) {
  return extract::canonical_mesh_crc(soup);
}

/// Names the ISAs a golden check is about to sweep, so CI logs show which
/// kernels the host actually exercised (unavailable ones are skipped by
/// construction — dispatchable_isas() only lists what this CPU runs).
void log_dispatchable(const char* where) {
  std::cout << "[ kernels  ] " << where << " sweeps:";
  for (const extract::KernelIsa isa : extract::kernel::dispatchable_isas()) {
    std::cout << " " << extract::kernel::isa_name(isa);
  }
  std::cout << "\n";
}

data::RmConfig golden_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  config.seed = 777;
  return config;
}

core::VolumeU8 golden_volume() {
  return data::generate_rm_timestep(golden_rm(), 170);
}

extract::TriangleSoup engine_soup(
    std::size_t nodes,
    extract::KernelIsa isa = extract::KernelIsa::kAuto) {
  const core::VolumeU8 volume = golden_volume();
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  options.kernel.isa = isa;
  return std::move(*engine.run(kIsovalue, options).triangles_out);
}

/// Marches every record an opened retrieval stream delivers.
extract::TriangleSoup march_stream(index::RetrievalStream stream,
                                   core::ScalarKind kind,
                                   const metacell::MetacellGeometry& geometry) {
  extract::TriangleSoup soup;
  metacell::DecodedMetacell cell;
  while (auto batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      metacell::decode_metacell(batch->record(r), kind, geometry, cell);
      extract::extract_metacell(cell, kIsovalue, soup);
    }
  }
  return soup;
}

TEST(GoldenMesh, EnginesAgreeOnTheCanonicalMesh) {
  // In-core reference over the whole volume.
  const core::VolumeU8 volume = golden_volume();
  extract::TriangleSoup reference;
  extract::extract_volume(volume, kIsovalue, reference);
  const std::uint32_t golden = canonical_crc(reference);
  ASSERT_FALSE(reference.empty());

  // Structured engine, single node and striped across three: partitioning
  // must not change the canonical mesh. The single-node run repeats once
  // per dispatchable classification ISA.
  log_dispatchable("engine");
  for (const extract::KernelIsa isa : extract::kernel::dispatchable_isas()) {
    EXPECT_EQ(canonical_crc(engine_soup(1, isa)), golden)
        << extract::kernel::isa_name(isa);
  }
  EXPECT_EQ(canonical_crc(engine_soup(3)), golden);

  // External-tree stream: same plan, same records, same kernel.
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  io::MemoryBlockDevice brick_device(512);
  io::BlockDevice* brick_ptr = &brick_device;
  const auto built =
      index::CompactTreeBuilder::build(infos, *source, {&brick_ptr, 1});
  const index::CompactIntervalTree& tree = built.trees[0];

  io::MemoryBlockDevice index_device(512);
  const index::ExternalCompactTree external =
      index::ExternalCompactTree::build(tree, index_device, 512);
  const extract::TriangleSoup external_soup =
      march_stream(external.open_stream(kIsovalue, index_device, brick_device),
                   tree.scalar_kind(), source->geometry());
  EXPECT_EQ(canonical_crc(external_soup), golden);

  // And the in-core tree through the same stream path, for completeness.
  const extract::TriangleSoup compact_soup = march_stream(
      index::open_stream(tree, kIsovalue, brick_device), tree.scalar_kind(),
      source->geometry());
  EXPECT_EQ(canonical_crc(compact_soup), golden);
}

TEST(GoldenMesh, StructuredHashIsPinnedForEveryIsa) {
  const core::VolumeU8 volume = golden_volume();
  // Pinned golden value for (seed 777, 40x40x36, step 170, iso 128),
  // asserted once per dispatchable classification ISA. A deliberate
  // kernel/generator change re-pins it; anything else failing here is a
  // silent mesh regression.
  log_dispatchable("pinned hash");
  for (const extract::KernelIsa isa : extract::kernel::dispatchable_isas()) {
    extract::TriangleSoup reference;
    const extract::ExtractionStats stats = extract::extract_volume(
        volume, kIsovalue, reference, extract::KernelOptions{isa});
    const std::uint32_t crc = canonical_crc(reference);
    EXPECT_EQ(crc, 0x33E88068u)
        << extract::kernel::isa_name(isa) << ": canonical mesh hash moved: 0x"
        << std::hex << crc << " over " << std::dec << stats.triangles
        << " triangles";
  }
}

TEST(GoldenMesh, UnstructuredHashIsPinned) {
  const unstructured::TetMesh mesh = unstructured::make_tet_mesh(
      {.cells = 10, .seed = 777, .jitter = 0.3f},
      unstructured::TetField::kSphere);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const unstructured::TetPreprocessResult prep =
      unstructured::preprocess_tets(mesh, cluster);
  unstructured::TetQueryOptions options;
  options.keep_triangles = true;
  const unstructured::TetQueryReport report =
      unstructured::query_tets(cluster, prep, kIsovalue, options);
  ASSERT_TRUE(report.triangles_out.has_value());
  ASSERT_FALSE(report.triangles_out->empty());
  const std::uint32_t crc = canonical_crc(*report.triangles_out);

  // Determinism: the same query again is bit-identical.
  const unstructured::TetQueryReport again =
      unstructured::query_tets(cluster, prep, kIsovalue, options);
  EXPECT_EQ(canonical_crc(*again.triangles_out), crc);

  // Pinned golden value for (cells 10, seed 777, jitter 0.3, sphere,
  // iso 128); re-pin only on a deliberate marching-tets change.
  EXPECT_EQ(crc, 0x1AA20D08u)
      << "canonical tet-mesh hash moved: 0x" << std::hex << crc;
}

}  // namespace
}  // namespace oociso
