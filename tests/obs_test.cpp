// Unified observability layer (obs/metrics.h, obs/trace.h): unit tests for
// the primitives plus the reconciliation suites the layer exists for — a
// query's trace spans and registry metrics must agree with its QueryReport,
// and a concurrent serve run's per-query cache attribution must sum to the
// shared pools' fetch ledger. Carries the ctest label `obs` (run under
// ASan/UBSan and TSan in CI).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/rm_generator.h"
#include "metacell/source.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/cluster.h"
#include "pipeline/query_engine.h"
#include "serve/query_server.h"
#include "util/json.h"

namespace oociso {
namespace {

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(MetricsTest, GaugeTracksLevelAndHighWater) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.add(3), 3);
  EXPECT_EQ(gauge.add(2), 5);
  EXPECT_EQ(gauge.add(-4), 1);
  EXPECT_EQ(gauge.value(), 1);
  EXPECT_EQ(gauge.max_value(), 5);
  gauge.set(2);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max_value(), 5);  // set below the mark leaves it
}

TEST(MetricsTest, HistogramBucketsCountAndSum) {
  const std::array<double, 3> bounds = {1.0, 10.0, 100.0};
  obs::Histogram histogram(bounds);
  histogram.observe(0.5);    // bucket 0
  histogram.observe(1.0);    // bucket 0 (<= bound)
  histogram.observe(7.0);    // bucket 1
  histogram.observe(1000.0); // overflow
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1008.5);
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(MetricsTest, HistogramRejectsNonAscendingBounds) {
  const std::array<double, 3> bad = {1.0, 1.0, 2.0};
  EXPECT_THROW(obs::Histogram{bad}, std::invalid_argument);
}

TEST(MetricsTest, RegistryResolvesOneInstancePerName) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x.ops");
  obs::Counter& b = registry.counter("x.ops");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(registry.snapshot().counter("x.ops"), 7u);
  EXPECT_EQ(registry.snapshot().counter("never.created"), 0u);
}

TEST(MetricsTest, ConcurrentCountingLosesNothing) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& counter = registry.counter("stress.ops");
      obs::Gauge& gauge = registry.gauge("stress.level");
      for (int i = 0; i < kIncrements; ++i) {
        counter.add();
        gauge.add(1);
        gauge.add(-1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("stress.ops"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(snapshot.gauges.at("stress.level").first, 0);
  EXPECT_GE(snapshot.gauges.at("stress.level").second, 1);
}

TEST(MetricsTest, SnapshotJsonParses) {
  obs::MetricsRegistry registry;
  registry.counter("io.read_ops").add(3);
  registry.gauge("serve.in_flight").set(2);
  registry.histogram("io.read_seconds").observe(0.25);
  const util::JsonValue doc = util::parse_json(registry.to_json());
  EXPECT_EQ(doc.at("counters").at("io.read_ops").as_number(), 3.0);
  EXPECT_EQ(doc.at("gauges").at("serve.in_flight").at("value").as_number(),
            2.0);
  const util::JsonValue& histogram =
      doc.at("histograms").at("io.read_seconds");
  EXPECT_EQ(histogram.at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.at("sum").as_number(), 0.25);
}

// ---------------------------------------------------------------------------
// Tracer primitives
// ---------------------------------------------------------------------------

TEST(TracerTest, NullTracerSpansAreNoOps) {
  obs::Span span(nullptr, "nothing", 0, 0);
  span.arg("key", std::uint64_t{1});
  span.end();  // double end must also be safe
}

TEST(TracerTest, SpanBeginEndBalance) {
  obs::Tracer tracer;
  {
    obs::Span outer(&tracer, "outer", 1, 0);
    EXPECT_EQ(tracer.open_spans(), 1);
    {
      obs::Span inner(&tracer, "inner", 1, 0);
      EXPECT_EQ(tracer.open_spans(), 2);
    }
    EXPECT_EQ(tracer.open_spans(), 1);
    obs::Span moved = std::move(outer);  // move must not double-count
    EXPECT_EQ(tracer.open_spans(), 1);
  }
  EXPECT_EQ(tracer.open_spans(), 0);
  EXPECT_EQ(tracer.event_count(), 2u);  // inner first (ended first)
  const std::vector<obs::TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
}

TEST(TracerTest, TimestampsAreMonotoneInEmissionOrder) {
  obs::Tracer tracer;
  for (int i = 0; i < 64; ++i) {
    obs::Span span(&tracer, "step", 1, 0);
  }
  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 64u);
  std::uint64_t last_end = 0;
  for (const obs::TraceEvent& event : events) {
    EXPECT_GE(event.ts_us + event.dur_us, last_end);
    EXPECT_LE(event.ts_us + event.dur_us, tracer.now_us());
    last_end = event.ts_us + event.dur_us;
  }
}

TEST(TracerTest, TraceJsonIsValidChromeFormat) {
  obs::Tracer tracer;
  tracer.name_process(3, "query 3 iso=1.5");
  tracer.name_thread(3, obs::track(0, obs::Lane::kIo), "node 0 io");
  {
    obs::Span span(&tracer, "io.read", 3, obs::track(0, obs::Lane::kIo));
    span.arg("bytes", std::uint64_t{4096});
    span.arg("ratio", 0.5);
    span.arg("path", "quoted \"name\"\n");
  }
  tracer.instant("io.checksum_failure", 3, obs::track(0, obs::Lane::kIo));
  tracer.counter("serve.in_flight", 0, 2.0);

  const util::JsonValue doc = util::parse_json(tracer.to_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::JsonValue::Array& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 5u);

  std::map<std::string, const util::JsonValue*> by_name;
  for (const util::JsonValue& event : events) {
    EXPECT_EQ(event.at("cat").as_string(), "oociso");
    by_name[event.at("name").as_string()] = &event;
  }
  const util::JsonValue& read = *by_name.at("io.read");
  EXPECT_EQ(read.at("ph").as_string(), "X");
  EXPECT_EQ(read.at("pid").as_number(), 3.0);
  EXPECT_EQ(read.at("tid").as_number(),
            static_cast<double>(obs::track(0, obs::Lane::kIo)));
  EXPECT_EQ(read.at("args").at("bytes").as_number(), 4096.0);
  EXPECT_DOUBLE_EQ(read.at("args").at("ratio").as_number(), 0.5);
  EXPECT_EQ(read.at("args").at("path").as_string(), "quoted \"name\"\n");
  EXPECT_EQ(by_name.at("io.checksum_failure")->at("ph").as_string(), "i");
  EXPECT_EQ(by_name.at("serve.in_flight")->at("ph").as_string(), "C");
  EXPECT_EQ(by_name.at("process_name")->at("ph").as_string(), "M");
}

// ---------------------------------------------------------------------------
// Single-query reconciliation: trace + registry vs QueryReport
// ---------------------------------------------------------------------------

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return config;
}

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

/// Sums an integer arg over every trace span named `span_name` (optionally
/// one pid only; pid < 0 sums all).
std::uint64_t sum_span_arg(const util::JsonValue& trace,
                           const std::string& span_name,
                           const std::string& arg, std::int64_t pid = -1) {
  std::uint64_t total = 0;
  for (const util::JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.at("name").as_string() != span_name) continue;
    if (pid >= 0 &&
        static_cast<std::int64_t>(event.at("pid").as_number()) != pid) {
      continue;
    }
    total += static_cast<std::uint64_t>(event.at("args").at(arg).as_number());
  }
  return total;
}

double sum_span_arg_double(const util::JsonValue& trace,
                           const std::string& span_name,
                           const std::string& arg) {
  double total = 0.0;
  for (const util::JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.at("name").as_string() != span_name) continue;
    total += event.at("args").at(arg).as_number();
  }
  return total;
}

TEST(ObsReconcileTest, SingleQueryTraceMatchesReport) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  cluster.attach_metrics(registry);

  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.render = true;
  options.image_width = options.image_height = 64;
  options.tracer = &tracer;
  options.metrics = &registry;
  options.query_id = 7;
  const pipeline::QueryReport report = engine.run(128.0f, options);

  EXPECT_EQ(tracer.open_spans(), 0);
  const util::JsonValue trace = util::parse_json(tracer.to_json());

  // One node.extract span per node, all under the query's pid, carrying
  // exactly the per-node report totals.
  std::uint64_t report_read_ops = 0, report_bytes = 0, report_triangles = 0;
  double report_io_model = 0.0;
  for (const auto& node : report.nodes) {
    report_read_ops += node.io.read_ops;
    report_bytes += node.io.bytes_read;
    report_triangles += node.triangles;
    report_io_model += node.io_model_seconds;
  }
  EXPECT_EQ(sum_span_arg(trace, "node.extract", "read_ops", 7),
            report_read_ops);
  EXPECT_EQ(sum_span_arg(trace, "node.extract", "bytes_read", 7),
            report_bytes);
  EXPECT_EQ(sum_span_arg(trace, "node.extract", "triangles", 7),
            report_triangles);
  EXPECT_NEAR(sum_span_arg_double(trace, "node.extract", "io_model_seconds"),
              report_io_model, 1e-12);

  // The mc.batch spans tile the extraction: their triangles sum to the
  // report's total too.
  EXPECT_EQ(sum_span_arg(trace, "mc.batch", "triangles", 7),
            report_triangles);

  // Registry side: the mirrored query.* metrics agree with the report, and
  // the devices' counters agree with the aggregated IoStats.
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("query.count"), 1u);
  EXPECT_EQ(snapshot.counter("query.triangles"), report.total_triangles());
  EXPECT_EQ(snapshot.counter("mc.triangles"), report.total_triangles());
  EXPECT_NEAR(snapshot.histogram_sum("query.io_model_seconds"),
              report_io_model, 1e-12);
  std::uint64_t device_read_ops = 0;
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    device_read_ops += snapshot.counter("node" + std::to_string(node) +
                                        ".disk.read_ops");
  }
  EXPECT_EQ(device_read_ops, report_read_ops);

  // Rendering on: per-node render spans and one composite span exist.
  EXPECT_EQ(sum_span_arg(trace, "node.render", "triangles", 7),
            report_triangles);
  std::size_t composite_spans = 0;
  for (const util::JsonValue& event : trace.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "composite") ++composite_spans;
  }
  EXPECT_EQ(composite_spans, 1u);
}

// ---------------------------------------------------------------------------
// Concurrent serve stress: per-query attribution sums to pool fetches
// ---------------------------------------------------------------------------

TEST(ObsReconcileTest, ServeStressAttributionSumsToPoolFetches) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  obs::Tracer tracer;
  obs::MetricsRegistry registry;

  const std::vector<core::ValueKey> isovalues = {96.0f,  110.0f, 120.0f,
                                                 128.0f, 135.0f, 150.0f,
                                                 170.0f, 190.0f};
  std::vector<pipeline::QueryReport> reports;
  {
    serve::ServeOptions options;
    options.max_concurrent_queries = 8;
    options.cache_capacity_blocks = 512;
    options.query.render = false;
    options.tracer = &tracer;
    options.metrics = &registry;
    serve::QueryServer server(cluster, prep, options);
    reports = server.serve(isovalues);

    // Pool ledger identity, from the registry's derived counters and from
    // the pool view — one set of atomics, two views.
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    std::uint64_t fetches = 0, hits = 0, misses = 0, waits = 0;
    for (std::size_t node = 0; node < cluster.size(); ++node) {
      const std::string prefix = "node" + std::to_string(node) + ".cache.";
      fetches += snapshot.counter(prefix + "fetches");
      hits += snapshot.counter(prefix + "hits");
      misses += snapshot.counter(prefix + "misses");
      waits += snapshot.counter(prefix + "waits");
    }
    EXPECT_EQ(hits + misses + waits, fetches);
    const io::CacheCounters pool_view = server.cache_counters();
    EXPECT_EQ(pool_view.fetches, fetches);
    EXPECT_EQ(pool_view.hits, hits);

    // Every span closed; the trace parses as Chrome JSON.
    EXPECT_EQ(tracer.open_spans(), 0);
    const util::JsonValue trace = util::parse_json(tracer.to_json());

    // Per-query device-I/O attribution: each query's node.extract spans
    // carry its hit/miss/wait block counts; across the 8 queries these sum
    // exactly to the pools' fetch ledger.
    const std::uint64_t attributed =
        sum_span_arg(trace, "node.extract", "cache_hit_blocks") +
        sum_span_arg(trace, "node.extract", "cache_miss_blocks") +
        sum_span_arg(trace, "node.extract", "cache_wait_blocks");
    EXPECT_EQ(attributed, fetches);

    // Each query contributes one admission.wait span and one node.extract
    // span per node, under its own pid.
    std::map<std::int64_t, std::size_t> extract_spans_per_pid;
    std::size_t admission_spans = 0;
    for (const util::JsonValue& event : trace.at("traceEvents").as_array()) {
      const std::string& name = event.at("name").as_string();
      if (name == "node.extract") {
        ++extract_spans_per_pid[static_cast<std::int64_t>(
            event.at("pid").as_number())];
      } else if (name == "admission.wait") {
        ++admission_spans;
      }
    }
    EXPECT_EQ(admission_spans, isovalues.size());
    EXPECT_EQ(extract_spans_per_pid.size(), isovalues.size());
    for (const auto& [pid, count] : extract_spans_per_pid) {
      EXPECT_EQ(count, cluster.size()) << "pid " << pid;
    }

    // Trace read_ops agree with the reports' physical read attribution.
    std::uint64_t report_read_ops = 0;
    for (const auto& report : reports) {
      for (const auto& node : report.nodes) report_read_ops += node.io.read_ops;
    }
    EXPECT_EQ(sum_span_arg(trace, "node.extract", "read_ops"),
              report_read_ops);

    EXPECT_EQ(snapshot.counter("serve.queries"), isovalues.size());
    EXPECT_EQ(snapshot.counter("query.count"), isovalues.size());
    EXPECT_EQ(
        static_cast<std::int64_t>(server.peak_in_flight()),
        snapshot.gauges.at("serve.in_flight").second);
    EXPECT_LE(server.peak_in_flight(), std::size_t{8});
  }
}

}  // namespace
}  // namespace oociso
