#include <gtest/gtest.h>

#include <algorithm>

#include "data/analytic_fields.h"
#include "data/rm_generator.h"
#include "extract/marching_cubes.h"
#include "metacell/source.h"
#include "pipeline/query_engine.h"
#include "pipeline/timevarying.h"
#include "util/stats.h"
#include "util/temp_dir.h"

namespace oociso::pipeline {
namespace {

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return config;
}

// ---------------------------------------------------------------------------
// Preprocess
// ---------------------------------------------------------------------------

TEST(Preprocess, CullsAndWritesBricks) {
  auto cluster = make_cluster(1);
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult result = preprocess(*source, cluster);

  EXPECT_EQ(result.total_metacells, 6u * 6u * 6u);
  EXPECT_LT(result.kept_metacells, result.total_metacells);
  EXPECT_GT(result.culled_fraction(), 0.1);
  // Brick bytes == kept metacells x record size.
  EXPECT_EQ(result.bytes_written, result.kept_metacells * 734u);
  EXPECT_EQ(cluster.disk(0).size(), result.bytes_written);
  // The in-core index is tiny relative to the data (u8: n <= 256).
  EXPECT_LT(result.index_bytes(), 64u * 1024u);
}

TEST(Preprocess, StripingConservesBytes) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto serial = make_cluster(1);
  auto striped = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult a = preprocess(*source, serial);
  const PreprocessResult b = preprocess(*source, striped);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.kept_metacells, b.kept_metacells);
  std::uint64_t striped_bytes = 0;
  for (std::size_t i = 0; i < 4; ++i) striped_bytes += striped.disk(i).size();
  EXPECT_EQ(striped_bytes, b.bytes_written);
}

TEST(Preprocess, RejectsMismatchedMetacellSize) {
  auto cluster = make_cluster(1);
  const auto source =
      metacell::make_source(data::make_sphere_field({32, 32, 32}), 5);
  PreprocessConfig config;
  config.samples_per_side = 9;  // source was built with 5
  EXPECT_THROW(preprocess(*source, cluster, config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// QueryEngine: out-of-core result == in-core reference
// ---------------------------------------------------------------------------

class PipelineMatchesReference : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(PipelineMatchesReference, TrianglesAndAreaIdentical) {
  const std::size_t nodes = GetParam();
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(nodes);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  for (const float isovalue : {60.0f, 128.0f, 190.0f}) {
    extract::TriangleSoup reference;
    extract::extract_volume(volume, isovalue, reference);

    QueryOptions options;
    options.render = false;
    options.keep_triangles = true;
    const QueryReport report = engine.run(isovalue, options);

    EXPECT_EQ(report.total_triangles(), reference.size())
        << "nodes=" << nodes << " iso=" << isovalue;
    ASSERT_TRUE(report.triangles_out.has_value());
    EXPECT_EQ(report.triangles_out->size(), reference.size());
    EXPECT_NEAR(report.triangles_out->total_area(), reference.total_area(),
                reference.total_area() * 1e-6 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeSweep, PipelineMatchesReference,
                         ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(QueryEngineTest, ActiveMetacellsMatchBruteForce) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  QueryOptions options;
  options.render = false;
  for (const float isovalue : {40.0f, 128.0f, 220.0f}) {
    std::uint64_t expected = 0;
    for (const auto& info : infos) {
      if (info.interval.stabs(isovalue)) ++expected;
    }
    const QueryReport report = engine.run(isovalue, options);
    EXPECT_EQ(report.total_active_metacells(), expected) << isovalue;
  }
}

TEST(QueryEngineTest, ReportAccountingIsConsistent) {
  const auto volume = data::generate_rm_timestep(small_rm(), 180);
  auto cluster = make_cluster(3);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  QueryOptions options;
  options.keep_triangles = true;
  options.keep_image = true;
  const QueryReport report = engine.run(128.0f, options);

  ASSERT_EQ(report.nodes.size(), 3u);
  std::uint64_t sum_amc = 0;
  std::uint64_t sum_triangles = 0;
  for (const auto& node : report.nodes) {
    sum_amc += node.active_metacells;
    sum_triangles += node.triangles;
    EXPECT_LE(node.active_metacells, node.records_fetched);
    EXPECT_GT(node.io.bytes_read, 0u);
    EXPECT_GT(node.io_model_seconds, 0.0);
  }
  EXPECT_EQ(report.total_active_metacells(), sum_amc);
  EXPECT_EQ(report.total_triangles(), sum_triangles);
  EXPECT_EQ(report.triangles_out->size(), sum_triangles);
  EXPECT_GT(report.completion_seconds(), 0.0);
  EXPECT_GT(report.mtri_per_second(), 0.0);
  EXPECT_GT(report.composite_traffic.bytes_total, 0u);
  ASSERT_TRUE(report.image.has_value());
  EXPECT_GT(report.image->covered_pixels(), 0u);
}

TEST(QueryEngineTest, OverlappedAndSerialPipelinesProduceIdenticalResults) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(3);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  for (const float isovalue : {80.0f, 128.0f}) {
    QueryOptions overlapped;
    overlapped.render = false;
    overlapped.keep_triangles = true;
    overlapped.overlap_io_compute = true;
    QueryOptions serial = overlapped;
    serial.overlap_io_compute = false;

    const QueryReport a = engine.run(isovalue, overlapped);
    const QueryReport b = engine.run(isovalue, serial);

    // The pipeline changes scheduling, never results or device traffic.
    EXPECT_EQ(a.total_triangles(), b.total_triangles());
    EXPECT_EQ(a.total_active_metacells(), b.total_active_metacells());
    EXPECT_NEAR(a.triangles_out->total_area(), b.triangles_out->total_area(),
                b.triangles_out->total_area() * 1e-9 + 1e-9);
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].io.blocks_read, b.nodes[n].io.blocks_read);
      EXPECT_EQ(a.nodes[n].io.seeks, b.nodes[n].io.seeks);
      EXPECT_DOUBLE_EQ(a.nodes[n].io_model_seconds,
                       b.nodes[n].io_model_seconds);
      // Overlap accounting only appears in the overlapped run, and never
      // claims to hide more than the smaller phase.
      EXPECT_GE(a.nodes[n].overlap_saved_seconds, 0.0);
      EXPECT_LE(a.nodes[n].overlap_saved_seconds,
                std::min(a.nodes[n].io_model_seconds,
                         a.nodes[n].triangulation_seconds) + 1e-12);
      EXPECT_DOUBLE_EQ(b.nodes[n].overlap_saved_seconds, 0.0);
      EXPECT_GT(a.nodes[n].io_wall_seconds, 0.0);
    }
    for (const auto& ledger : a.times.per_node) {
      EXPECT_TRUE(ledger.extraction_overlapped());
    }
    for (const auto& ledger : b.times.per_node) {
      EXPECT_FALSE(ledger.extraction_overlapped());
    }
    // The overlapped extraction window can never exceed the barrier view
    // of the same phase times.
    EXPECT_LE(a.times.extraction_completion_seconds(),
              a.times.max_phase(parallel::Phase::kAmcRetrieval) +
                  a.times.max_phase(parallel::Phase::kTriangulation) + 1e-12);
  }
}

TEST(QueryEngineTest, ParallelImageMatchesSerialImage) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  QueryOptions options;
  options.keep_image = true;
  options.image_width = 128;
  options.image_height = 128;

  auto serial_cluster = make_cluster(1);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult serial_prep = preprocess(*source, serial_cluster);
  QueryEngine serial_engine(serial_cluster, serial_prep);
  const QueryReport serial = serial_engine.run(128.0f, options);

  auto parallel_cluster = make_cluster(4);
  const PreprocessResult parallel_prep =
      preprocess(*source, parallel_cluster);
  QueryEngine parallel_engine(parallel_cluster, parallel_prep);
  const QueryReport parallel = parallel_engine.run(128.0f, options);

  // Same triangles, rasterized per node then z-merged, must reproduce the
  // serial image except where equal-depth fragments tie; allow a sliver.
  ASSERT_TRUE(serial.image && parallel.image);
  std::size_t differing = 0;
  for (std::int32_t y = 0; y < 128; ++y) {
    for (std::int32_t x = 0; x < 128; ++x) {
      if (serial.image->color_at(x, y) != parallel.image->color_at(x, y)) {
        ++differing;
      }
    }
  }
  EXPECT_LE(differing, serial.image->pixel_count() / 200);
}

TEST(QueryEngineTest, LoadBalanceAcrossIsovalues) {
  // The paper's Tables 6-7: per-node AMC and triangle counts are nearly
  // equal for every isovalue.
  const auto volume = data::generate_rm_timestep(small_rm(), 220);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  QueryOptions options;
  options.render = false;
  for (const float isovalue : {50.0f, 100.0f, 150.0f, 200.0f}) {
    const QueryReport report = engine.run(isovalue, options);
    if (report.total_active_metacells() < 100) continue;  // too few to judge
    std::vector<std::uint64_t> amc;
    for (const auto& node : report.nodes) amc.push_back(node.active_metacells);
    EXPECT_LT(util::imbalance(amc), 0.10) << "iso=" << isovalue;
  }
}

TEST(QueryEngineTest, RejectsMismatchedCluster) {
  const auto volume = data::make_sphere_field({24, 24, 24});
  auto build_cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, build_cluster);
  auto other_cluster = make_cluster(3);
  EXPECT_THROW(QueryEngine(other_cluster, prep), std::invalid_argument);
}

TEST(QueryEngineTest, EmptyIsovalueProducesNothing) {
  const auto volume = data::make_sphere_field({24, 24, 24});
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);
  QueryOptions options;
  options.render = false;
  const QueryReport report = engine.run(300.0f, options);
  EXPECT_EQ(report.total_active_metacells(), 0u);
  EXPECT_EQ(report.total_triangles(), 0u);
}

TEST(QueryEngineTest, CompositeSchedulesProduceSameImage) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  QueryEngine engine(cluster, prep);

  QueryOptions options;
  options.keep_image = true;
  options.image_width = options.image_height = 96;
  options.schedule = CompositeSchedule::kBinarySwap;
  const QueryReport swap = engine.run(128.0f, options);
  options.schedule = CompositeSchedule::kDirectSend;
  const QueryReport direct = engine.run(128.0f, options);

  ASSERT_TRUE(swap.image && direct.image);
  for (std::int32_t y = 0; y < 96; ++y) {
    for (std::int32_t x = 0; x < 96; ++x) {
      ASSERT_EQ(swap.image->color_at(x, y), direct.image->color_at(x, y))
          << "pixel (" << x << ", " << y << ")";
    }
  }
  // Direct send concentrates (p-1) buffers on the display node; binary swap
  // caps per-node traffic near two buffers.
  EXPECT_LT(swap.composite_traffic.max_node_bytes,
            direct.composite_traffic.max_node_bytes);
}

TEST(QueryEngineTest, FloatVolumesWorkEndToEnd) {
  // f32 scalar path: build a float field, run the full out-of-core pipeline.
  const core::GridDims dims{24, 24, 20};
  core::VolumeF32 volume(dims);
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      for (std::int32_t x = 0; x < dims.nx; ++x) {
        volume.at(x, y, z) =
            0.5f * static_cast<float>(x) + 0.25f * static_cast<float>(y) +
            0.125f * static_cast<float>(z);  // non-integer values
      }
    }
  }
  extract::TriangleSoup reference;
  extract::extract_volume(volume, 7.3f, reference);
  ASSERT_GT(reference.size(), 0u);

  auto cluster = make_cluster(2);
  const metacell::VolumeMetacellSource<float> source(volume, 9);
  const PreprocessResult prep = preprocess(source, cluster);
  EXPECT_EQ(prep.kind, core::ScalarKind::kF32);
  QueryEngine engine(cluster, prep);
  QueryOptions options;
  options.render = false;
  EXPECT_EQ(engine.run(7.3f, options).total_triangles(), reference.size());
}

// ---------------------------------------------------------------------------
// Time-varying engine
// ---------------------------------------------------------------------------

TEST(TimeVarying, PerStepQueriesMatchSingleStepPipelines) {
  data::RmConfig rm = small_rm();
  auto cluster = make_cluster(2);
  TimeVaryingEngine engine(
      cluster, [&rm](int step) { return data::generate_rm_timestep(rm, step); });
  engine.preprocess_steps(100, 3);
  ASSERT_EQ(engine.steps().size(), 3u);

  QueryOptions options;
  options.render = false;
  for (const int step : {100, 101, 102}) {
    const QueryReport report = engine.query(step, 128.0f, options);

    // Reference: a fresh single-step pipeline.
    const auto volume = data::generate_rm_timestep(rm, step);
    extract::TriangleSoup reference;
    extract::extract_volume(volume, 128.0f, reference);
    EXPECT_EQ(report.total_triangles(), reference.size()) << "step " << step;
  }
}

TEST(TimeVarying, IndexStaysSmallAcrossSteps) {
  data::RmConfig rm = small_rm();
  auto cluster = make_cluster(2);
  TimeVaryingEngine engine(
      cluster, [&rm](int step) { return data::generate_rm_timestep(rm, step); });
  engine.preprocess_steps(50, 4);
  // Four steps, two nodes: well under a megabyte (Section 5.2's argument).
  EXPECT_LT(engine.total_index_bytes(), 1u << 20);
}

TEST(TimeVarying, UnknownStepThrows) {
  data::RmConfig rm = small_rm();
  auto cluster = make_cluster(1);
  TimeVaryingEngine engine(
      cluster, [&rm](int step) { return data::generate_rm_timestep(rm, step); });
  engine.preprocess_steps(10, 1);
  EXPECT_THROW(engine.query(11, 100.0f), std::out_of_range);
  EXPECT_THROW(engine.preprocess_steps(10, 1), std::invalid_argument);
}

}  // namespace
}  // namespace oociso::pipeline
