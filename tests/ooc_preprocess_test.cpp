#include <gtest/gtest.h>

#include <fstream>

#include "data/raw_io.h"
#include "extract/marching_cubes.h"
#include "data/rm_generator.h"
#include "metacell/source.h"
#include "pipeline/ooc_preprocess.h"
#include "pipeline/query_engine.h"
#include "util/temp_dir.h"

namespace oociso::pipeline {
namespace {

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return config;
}

parallel::Cluster make_cluster(std::size_t nodes,
                               const std::filesystem::path& dir) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.storage_dir = dir;
  return parallel::Cluster(config);
}

TEST(OocPreprocess, MatchesInMemoryPreprocessExactly) {
  util::TempDir dir("oociso-ooc");
  const auto volume = data::generate_rm_timestep(small_rm(), 230);
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);

  // Reference: in-memory preprocess.
  std::filesystem::create_directories(dir.path() / "mem");
  auto memory_cluster = make_cluster(2, dir.path() / "mem");
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult reference = preprocess(*source, memory_cluster);

  // Out-of-core preprocess over the file.
  std::filesystem::create_directories(dir.path() / "ooc");
  auto ooc_cluster = make_cluster(2, dir.path() / "ooc");
  const OocPreprocessResult ooc = preprocess_out_of_core(
      volume_file, ooc_cluster, dir.path() / "scratch");

  // Identical aggregate layout...
  EXPECT_EQ(ooc.result.kept_metacells, reference.kept_metacells);
  EXPECT_EQ(ooc.result.total_metacells, reference.total_metacells);
  EXPECT_EQ(ooc.result.bricks, reference.bricks);
  EXPECT_EQ(ooc.result.bytes_written, reference.bytes_written);
  // ...and bit-identical brick files per node.
  for (std::size_t node = 0; node < 2; ++node) {
    const std::uint64_t size = memory_cluster.disk(node).size();
    ASSERT_EQ(ooc_cluster.disk(node).size(), size);
    std::vector<std::byte> a(size);
    std::vector<std::byte> b(size);
    memory_cluster.disk(node).read(0, a);
    ooc_cluster.disk(node).read(0, b);
    EXPECT_EQ(a, b) << "node " << node;
  }
}

TEST(OocPreprocess, QueriesMatchReferencePipeline) {
  util::TempDir dir("oociso-ooc-q");
  const auto volume = data::generate_rm_timestep(small_rm(), 120);
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);

  std::filesystem::create_directories(dir.path() / "cluster");
  auto cluster = make_cluster(3, dir.path() / "cluster");
  const OocPreprocessResult ooc =
      preprocess_out_of_core(volume_file, cluster, dir.path() / "scratch");

  QueryEngine engine(cluster, ooc.result);
  QueryOptions options;
  options.render = false;
  for (const float isovalue : {60.0f, 128.0f, 200.0f}) {
    extract::TriangleSoup soup;
    extract::extract_volume(volume, isovalue, soup);
    const QueryReport report = engine.run(isovalue, options);
    EXPECT_EQ(report.total_triangles(), soup.size()) << isovalue;
  }
}

TEST(OocPreprocess, ScanPassIsSequential) {
  util::TempDir dir("oociso-ooc-seq");
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);

  std::filesystem::create_directories(dir.path() / "cluster");
  auto cluster = make_cluster(1, dir.path() / "cluster");
  const OocPreprocessResult ooc =
      preprocess_out_of_core(volume_file, cluster, dir.path() / "scratch");

  // One slab read per metacell layer; each steps back one overlap row, so
  // seeks stay bounded by the layer count (plus the first access).
  const metacell::MetacellGeometry geometry({40, 40, 36}, 9);
  EXPECT_LE(ooc.scan_io.seeks,
            static_cast<std::uint64_t>(geometry.metacell_dims().nz) + 1);
  // Volume bytes are read once, plus the k-th overlap row per layer.
  const std::uint64_t raw = 40ull * 40 * 36;
  EXPECT_GE(ooc.scan_io.bytes_read, raw);
  EXPECT_LE(ooc.scan_io.bytes_read, raw + raw / 4);
}

TEST(OocPreprocess, WorksWithU16Volumes) {
  util::TempDir dir("oociso-ooc-u16");
  const auto volume = std::get<core::VolumeU16>(data::make_dataset("mrbrain", 8));
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);

  std::filesystem::create_directories(dir.path() / "cluster");
  auto cluster = make_cluster(2, dir.path() / "cluster");
  const OocPreprocessResult ooc =
      preprocess_out_of_core(volume_file, cluster, dir.path() / "scratch");
  EXPECT_EQ(ooc.result.kind, core::ScalarKind::kU16);
  EXPECT_GT(ooc.result.kept_metacells, 0u);

  // Cross-check one query against the in-core reference.
  QueryEngine engine(cluster, ooc.result);
  QueryOptions options;
  options.render = false;
  extract::TriangleSoup soup;
  extract::extract_volume(volume, 1800.0f, soup);
  EXPECT_EQ(engine.run(1800.0f, options).total_triangles(), soup.size());
}

TEST(OocPreprocess, RejectsGarbageFile) {
  util::TempDir dir("oociso-ooc-bad");
  std::ofstream(dir.file("junk.oocv"), std::ios::binary)
      << "not a volume at all, sorry";
  std::filesystem::create_directories(dir.path() / "cluster");
  auto cluster = make_cluster(1, dir.path() / "cluster");
  EXPECT_THROW(preprocess_out_of_core(dir.file("junk.oocv"), cluster,
                                      dir.path() / "scratch"),
               std::runtime_error);
}

TEST(OocPreprocess, ScratchIsRemovedOnSuccess) {
  util::TempDir dir("oociso-ooc-clean");
  const auto volume = data::generate_rm_timestep(small_rm(), 60);
  const auto volume_file = dir.file("volume.oocv");
  data::write_volume(data::AnyVolume(volume), volume_file);
  std::filesystem::create_directories(dir.path() / "cluster");
  auto cluster = make_cluster(1, dir.path() / "cluster");
  (void)preprocess_out_of_core(volume_file, cluster, dir.path() / "scratch");
  EXPECT_FALSE(
      std::filesystem::exists(dir.path() / "scratch" / "records.scratch"));
}

}  // namespace
}  // namespace oociso::pipeline
