#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <utility>

#include "io/buffer_pool.h"
#include "io/file_block_device.h"
#include "io/io_stats.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "io/throttled_block_device.h"
#include "util/temp_dir.h"
#include "util/timer.h"

namespace oociso::io {
namespace {

std::vector<std::byte> make_bytes(std::size_t count, int start = 0) {
  std::vector<std::byte> bytes(count);
  for (std::size_t i = 0; i < count; ++i) {
    bytes[i] = static_cast<std::byte>((start + static_cast<int>(i)) & 0xFF);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// MemoryBlockDevice + accounting
// ---------------------------------------------------------------------------

TEST(MemoryDevice, WriteReadRoundTrip) {
  MemoryBlockDevice device(64);
  const auto data = make_bytes(100);
  device.write(0, data);
  std::vector<std::byte> back(100);
  device.read(0, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(device.size(), 100u);
}

TEST(MemoryDevice, AppendReturnsOffset) {
  MemoryBlockDevice device(64);
  EXPECT_EQ(device.append(make_bytes(10)), 0u);
  EXPECT_EQ(device.append(make_bytes(10)), 10u);
  EXPECT_EQ(device.size(), 20u);
}

TEST(MemoryDevice, ReadPastEndThrows) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(8));
  std::vector<std::byte> buffer(16);
  EXPECT_THROW(device.read(0, buffer), std::out_of_range);
}

TEST(IoAccounting, BlockCountsAndOps) {
  MemoryBlockDevice device(100);
  device.write(0, make_bytes(250));  // blocks 0,1,2
  EXPECT_EQ(device.stats().write_ops, 1u);
  EXPECT_EQ(device.stats().blocks_written, 3u);
  EXPECT_EQ(device.stats().bytes_written, 250u);

  std::vector<std::byte> buffer(50);
  device.read(90, buffer);  // spans blocks 0-1
  EXPECT_EQ(device.stats().read_ops, 1u);
  EXPECT_EQ(device.stats().blocks_read, 2u);
}

TEST(IoAccounting, SeeksOnlyOnNonSequentialAccess) {
  MemoryBlockDevice device(100, /*readahead_blocks=*/0);
  device.write(0, make_bytes(1000));  // first access: 1 seek
  EXPECT_EQ(device.stats().seeks, 1u);

  std::vector<std::byte> buffer(100);
  device.read(0, buffer);  // jump back to block 0: seek
  EXPECT_EQ(device.stats().seeks, 2u);
  device.read(100, buffer);  // next block: sequential
  device.read(200, buffer);  // next block: sequential
  EXPECT_EQ(device.stats().seeks, 2u);
  device.read(700, buffer);  // jump: seek
  EXPECT_EQ(device.stats().seeks, 3u);
}

TEST(IoAccounting, ForwardSkipsWithinReadaheadAreNotSeeks) {
  MemoryBlockDevice device(100, /*readahead_blocks=*/4);
  device.write(0, make_bytes(1000));  // blocks 0..9, 1 seek
  std::vector<std::byte> buffer(100);
  device.read(0, buffer);    // backward: seek
  device.read(300, buffer);  // forward gap of 2 blocks <= window: skip
  EXPECT_EQ(device.stats().seeks, 2u);
  EXPECT_EQ(device.stats().skip_blocks, 2u);
  device.read(900, buffer);  // forward gap of 5 blocks > window: seek
  EXPECT_EQ(device.stats().seeks, 3u);
  EXPECT_EQ(device.stats().skip_blocks, 2u);
}

TEST(IoAccounting, ZeroLengthIsFree) {
  MemoryBlockDevice device(64);
  device.write(0, {});
  EXPECT_EQ(device.stats().total_ops(), 0u);
}

TEST(IoAccounting, SinceSnapshot) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(64));
  const IoStats snapshot = device.stats();
  device.write(64, make_bytes(64));
  const IoStats delta = device.stats().since(snapshot);
  EXPECT_EQ(delta.write_ops, 1u);
  EXPECT_EQ(delta.bytes_written, 64u);
}

TEST(DiskModelTest, PricesBandwidthAndSeeks) {
  DiskModel model;
  model.block_size = 4096;
  model.bandwidth_bytes_per_s = 50e6;
  model.seek_seconds = 0.004;
  IoStats stats;
  stats.blocks_read = 1000;
  stats.seeks = 10;
  stats.skip_blocks = 24;  // forward skips are charged at bandwidth
  const double expected = (1000.0 + 24.0) * 4096.0 / 50e6 + 10 * 0.004;
  EXPECT_DOUBLE_EQ(model.seconds(stats), expected);
}

// ---------------------------------------------------------------------------
// FileBlockDevice
// ---------------------------------------------------------------------------

TEST(FileDevice, RoundTripAndReopen) {
  util::TempDir dir;
  const auto path = dir.file("device.dat");
  const auto data = make_bytes(5000, 3);
  {
    FileBlockDevice device(path, FileBlockDevice::Mode::kCreate);
    device.write(100, data);
    device.flush();
    EXPECT_EQ(device.size(), 5100u);
  }
  {
    FileBlockDevice device(path, FileBlockDevice::Mode::kReadOnly);
    EXPECT_EQ(device.size(), 5100u);
    std::vector<std::byte> back(5000);
    device.read(100, back);
    EXPECT_EQ(back, data);
  }
}

TEST(FileDevice, CreateTruncates) {
  util::TempDir dir;
  const auto path = dir.file("device.dat");
  {
    FileBlockDevice device(path, FileBlockDevice::Mode::kCreate);
    device.write(0, make_bytes(100));
  }
  FileBlockDevice device(path, FileBlockDevice::Mode::kCreate);
  EXPECT_EQ(device.size(), 0u);
}

TEST(FileDevice, OpenMissingThrows) {
  util::TempDir dir;
  EXPECT_THROW(
      FileBlockDevice(dir.file("missing"), FileBlockDevice::Mode::kReadOnly),
      std::system_error);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, ReadThroughAndHit) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(256));
  device.reset_stats();

  BufferPool pool(device, 4);
  std::vector<std::byte> buffer(64);
  pool.read(0, buffer);
  EXPECT_EQ(pool.misses(), 1u);
  pool.read(0, buffer);  // same block: cache hit, no device I/O
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(device.stats().read_ops, 1u);
}

TEST(BufferPoolTest, EvictionWritesBackDirty) {
  MemoryBlockDevice device(64);
  BufferPool pool(device, 2);
  // Write three blocks through a 2-block pool: block 0 must be evicted and
  // land on the device.
  pool.write(0, make_bytes(64, 1));
  pool.write(64, make_bytes(64, 2));
  pool.write(128, make_bytes(64, 3));
  EXPECT_GE(device.stats().write_ops, 1u);

  std::vector<std::byte> back(64);
  device.read(0, back);
  EXPECT_EQ(back, make_bytes(64, 1));
}

TEST(BufferPoolTest, FlushPersistsEverything) {
  MemoryBlockDevice device(64);
  BufferPool pool(device, 8);
  const auto data = make_bytes(300, 9);
  pool.write(10, data);
  pool.flush();
  std::vector<std::byte> back(300);
  device.read(10, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(device.size(), 310u);
}

TEST(BufferPoolTest, ReadBackUnflushedWrites) {
  MemoryBlockDevice device(64);
  BufferPool pool(device, 8);
  const auto data = make_bytes(100, 5);
  pool.write(30, data);
  std::vector<std::byte> back(100);
  pool.read(30, back);
  EXPECT_EQ(back, data);
}

TEST(BufferPoolTest, ReadPastLogicalEndThrows) {
  MemoryBlockDevice device(64);
  BufferPool pool(device, 2);
  pool.write(0, make_bytes(10));
  std::vector<std::byte> buffer(20);
  EXPECT_THROW(pool.read(0, buffer), std::out_of_range);
}

TEST(BufferPoolTest, LruEvictsColdestBlock) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(64 * 3));
  device.reset_stats();

  BufferPool pool(device, 2);
  std::vector<std::byte> buffer(64);
  pool.read(0, buffer);     // miss: cache {0}
  pool.read(64, buffer);    // miss: cache {0,1}
  pool.read(0, buffer);     // hit: 0 becomes MRU
  pool.read(128, buffer);   // miss: evicts 1 (LRU)
  pool.read(0, buffer);     // hit: still cached
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 3u);
}

TEST(BufferPoolTest, ZeroCapacityRejected) {
  MemoryBlockDevice device(64);
  EXPECT_THROW(BufferPool(device, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BufferPool pinning. Before the pin guard, pin() handed out a bare Frame&
// that the next faulting access could evict — at capacity 1 the reference
// dangled as soon as any other block was touched. A PinnedBlock now blocks
// eviction of its frame for as long as it lives.
// ---------------------------------------------------------------------------

TEST(BufferPoolPinTest, PinnedFrameSurvivesCompetingAccessAtCapacityOne) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(128, 1));
  BufferPool pool(device, 1);

  auto pinned = pool.pin_block(0);
  const std::vector<std::byte> before(pinned.data().begin(),
                                      pinned.data().end());

  // The old failure: this would evict block 0 to fault block 1 in, leaving
  // `pinned` pointing at freed frame memory. Now the pool has no evictable
  // victim and must refuse.
  std::vector<std::byte> buffer(64);
  EXPECT_THROW(pool.read(64, buffer), std::runtime_error);
  EXPECT_THROW((void)pool.pin_block(1), std::runtime_error);

  // The pinned bytes are untouched and still valid.
  const std::vector<std::byte> after(pinned.data().begin(),
                                     pinned.data().end());
  EXPECT_EQ(after, before);
  EXPECT_EQ(pool.pinned_blocks(), 1u);

  // Re-pinning the same resident block is fine (no fault needed).
  {
    auto again = pool.pin_block(0);
    EXPECT_EQ(again.block_index(), 0u);
  }
  EXPECT_EQ(pool.pinned_blocks(), 1u);
}

TEST(BufferPoolPinTest, ReleasedPinAllowsEvictionAgain) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(128, 1));
  BufferPool pool(device, 1);
  {
    auto pinned = pool.pin_block(0);
  }
  std::vector<std::byte> buffer(64);
  pool.read(64, buffer);  // evicts the now-unpinned block 0
  EXPECT_EQ(buffer, make_bytes(64, 1 + 64));
  EXPECT_EQ(pool.pinned_blocks(), 0u);
}

TEST(BufferPoolPinTest, DirtyPinnedWritesReachTheDevice) {
  MemoryBlockDevice device(64);
  BufferPool pool(device, 2);
  {
    auto pinned = pool.pin_block(0);
    const auto payload = make_bytes(64, 7);
    std::memcpy(pinned.data().data(), payload.data(), payload.size());
    pinned.mark_dirty();
  }
  pool.flush();
  std::vector<std::byte> back(64);
  device.read(0, back);
  EXPECT_EQ(back, make_bytes(64, 7));
  EXPECT_EQ(pool.dirty_blocks(), 0u);
}

TEST(BufferPoolPinTest, MovedFromPinReleasesOnlyOnce) {
  MemoryBlockDevice device(64);
  device.write(0, make_bytes(64));
  BufferPool pool(device, 1);
  auto pinned = pool.pin_block(0);
  auto moved = std::move(pinned);
  EXPECT_EQ(pool.pinned_blocks(), 1u);
  {
    const auto sink = std::move(moved);
  }
  EXPECT_EQ(pool.pinned_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// BufferPool round-trip property: arbitrary interleavings of reads, writes
// past the logical end, and evictions under pressure must leave the pool
// byte-identical to an in-memory reference, both through the warm pool and
// through a fresh pool after flush().
// ---------------------------------------------------------------------------

TEST(BufferPoolPropertyTest, RandomOpsRoundTripThroughFlush) {
  constexpr std::uint64_t kBlock = 64;
  constexpr std::size_t kCapacity = 3;  // small: constant eviction pressure
  constexpr std::size_t kOps = 2000;
  constexpr std::uint64_t kMaxOffset = kBlock * 40;

  MemoryBlockDevice device(kBlock);
  BufferPool pool(device, kCapacity);
  std::vector<std::byte> reference;  // mirror of the logical contents

  std::uint64_t state = 88172645463325252ull;  // xorshift64
  auto rng = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    const std::uint64_t offset = rng() % kMaxOffset;
    const std::size_t length = 1 + static_cast<std::size_t>(rng() % 150);
    if (rng() % 2 == 0 || pool.size() == 0) {
      // Write, often extending the logical end mid-block.
      const auto data = make_bytes(length, static_cast<int>(rng() % 251));
      pool.write(offset, data);
      if (offset + length > reference.size()) {
        reference.resize(offset + length, std::byte{0});
      }
      std::memcpy(reference.data() + offset, data.data(), length);
    } else if (pool.size() > 0) {
      // Read somewhere inside the logical size; must match the mirror.
      const std::uint64_t max_start = pool.size() - 1;
      const std::uint64_t start = rng() % (max_start + 1);
      const std::size_t count = static_cast<std::size_t>(
          std::min<std::uint64_t>(length, pool.size() - start));
      std::vector<std::byte> got(count);
      pool.read(start, got);
      ASSERT_EQ(0, std::memcmp(got.data(), reference.data() + start, count))
          << "op " << op << " offset " << start;
    }
  }

  ASSERT_EQ(pool.size(), reference.size());
  pool.flush();
  EXPECT_EQ(pool.dirty_blocks(), 0u);  // flush leaves nothing dirty
  EXPECT_EQ(device.size(), reference.size());

  // A fresh pool over the flushed device sees identical bytes.
  BufferPool reopened(device, kCapacity);
  std::vector<std::byte> all(reference.size());
  reopened.read(0, all);
  EXPECT_EQ(all, reference);
}

// ---------------------------------------------------------------------------
// ThrottledBlockDevice
// ---------------------------------------------------------------------------

TEST(ThrottledDevice, ForwardsBytesAndInjectsWallDelay) {
  MemoryBlockDevice inner(64);
  const auto data = make_bytes(128, 3);
  inner.write(0, data);

  ThrottledBlockDevice slow(inner, std::chrono::milliseconds(5));
  EXPECT_EQ(slow.size(), 128u);

  std::vector<std::byte> back(128);
  const util::WallTimer timer;
  slow.read(0, back);
  EXPECT_GE(timer.seconds(), 0.005);
  EXPECT_EQ(back, data);
  EXPECT_EQ(slow.reads(), 1u);

  slow.write(128, data);
  EXPECT_EQ(inner.size(), 256u);
  EXPECT_EQ(slow.writes(), 1u);
}

// ---------------------------------------------------------------------------
// serial
// ---------------------------------------------------------------------------

TEST(Serial, RoundTrip) {
  std::vector<std::byte> bytes;
  ByteWriter writer(bytes);
  writer.put<std::uint32_t>(0xDEADBEEF);
  writer.put<float>(3.5f);
  writer.put<std::uint8_t>(7);

  ByteReader reader(bytes);
  EXPECT_EQ(reader.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_FLOAT_EQ(reader.get<float>(), 3.5f);
  EXPECT_EQ(reader.get<std::uint8_t>(), 7);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Serial, TruncatedReadThrows) {
  std::vector<std::byte> bytes(3);
  ByteReader reader(bytes);
  EXPECT_THROW(reader.get<std::uint32_t>(), std::out_of_range);
}

TEST(Serial, SkipAndPosition) {
  std::vector<std::byte> bytes(10);
  ByteReader reader(bytes);
  reader.skip(4);
  EXPECT_EQ(reader.position(), 4u);
  EXPECT_THROW(reader.skip(7), std::out_of_range);
}

}  // namespace
}  // namespace oociso::io
