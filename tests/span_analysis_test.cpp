#include <gtest/gtest.h>

#include "data/rm_generator.h"
#include "index/span_analysis.h"
#include "metacell/source.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

std::uint64_t brute_count(const std::vector<MetacellInfo>& infos,
                          core::ValueKey isovalue) {
  std::uint64_t count = 0;
  for (const auto& info : infos) {
    if (info.interval.stabs(isovalue)) ++count;
  }
  return count;
}

TEST(SpanProfileTest, BucketCountsSandwichThePointCounts) {
  // counts_[b] is the number of intervals overlapping bucket b — an upper
  // bound for every isovalue inside the bucket, tight up to the intervals
  // whose endpoint falls strictly inside the bucket.
  const auto infos = random_intervals(2000, 100, 11);
  const std::uint32_t buckets = 200;
  const SpanProfile profile(infos, buckets);
  const core::ValueKey width = (profile.hi() - profile.lo()) /
                               static_cast<core::ValueKey>(buckets);
  for (std::uint32_t b = 0; b < buckets; b += 7) {
    const core::ValueKey center = profile.bucket_center(b);
    const std::uint64_t exact = brute_count(infos, center);
    const std::uint64_t estimate = profile.active_estimate(center);
    EXPECT_GE(estimate, exact) << "bucket " << b;

    // Slack: intervals with an endpoint inside this bucket.
    const core::ValueKey bucket_lo = profile.lo() + width * static_cast<core::ValueKey>(b);
    const core::ValueKey bucket_hi = bucket_lo + width;
    std::uint64_t slack = 0;
    for (const auto& info : infos) {
      const bool vmin_inside =
          info.interval.vmin >= bucket_lo && info.interval.vmin < bucket_hi;
      const bool vmax_inside =
          info.interval.vmax >= bucket_lo && info.interval.vmax < bucket_hi;
      if (vmin_inside || vmax_inside) ++slack;
    }
    EXPECT_LE(estimate, exact + slack) << "bucket " << b;
  }
}

TEST(SpanProfileTest, OutOfRangeIsZero) {
  const auto infos = random_intervals(100, 50, 3);
  const SpanProfile profile(infos);
  EXPECT_EQ(profile.active_estimate(-10.0f), 0u);
  EXPECT_EQ(profile.active_estimate(1000.0f), 0u);
}

TEST(SpanProfileTest, EmptyInputIsFlatZero) {
  const SpanProfile profile({}, 16);
  EXPECT_EQ(profile.counts().size(), 16u);
  for (const auto count : profile.counts()) EXPECT_EQ(count, 0u);
  EXPECT_TRUE(profile.suggest_isovalues(4).empty());
}

TEST(SpanProfileTest, RejectsZeroBuckets) {
  EXPECT_THROW(SpanProfile({}, 0), std::invalid_argument);
}

TEST(SpanProfileTest, SuggestionsAreActiveAndSeparated) {
  const auto volume = data::generate_rm_timestep(
      {.dims = {64, 64, 60}, .seed = 42}, 200);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const SpanProfile profile(infos, 256);

  const auto suggestions = profile.suggest_isovalues(4);
  ASSERT_GE(suggestions.size(), 2u);
  EXPECT_TRUE(std::is_sorted(suggestions.begin(), suggestions.end()));
  for (std::size_t i = 0; i < suggestions.size(); ++i) {
    EXPECT_GT(profile.active_estimate(suggestions[i]), 0u);
    if (i > 0) {
      EXPECT_GT(suggestions[i] - suggestions[i - 1],
                (profile.hi() - profile.lo()) / 16.0f);
    }
  }
  // The top suggestion should be near the activity peak.
  std::uint64_t best = 0;
  for (const auto s : suggestions) {
    best = std::max(best, profile.active_estimate(s));
  }
  const std::uint64_t global_max =
      *std::max_element(profile.counts().begin(), profile.counts().end());
  EXPECT_EQ(best, global_max);
}

TEST(SpanProfileTest, SuggestionCountIsBounded) {
  const auto infos = random_intervals(500, 64, 17);
  const SpanProfile profile(infos, 64);
  EXPECT_LE(profile.suggest_isovalues(3).size(), 3u);
  EXPECT_LE(profile.suggest_isovalues(100).size(), 9u);  // separation-bound
}

TEST(SpanProfileTest, ActiveEstimatePredictsQueryCost) {
  // The profile's estimate equals the exact per-isovalue active count the
  // index will deliver — it is the query cost predictor.
  const auto volume = data::generate_rm_timestep(
      {.dims = {48, 48, 44}, .seed = 42}, 150);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  const SpanProfile profile(infos, 512);
  for (const float isovalue : {40.0f, 100.0f, 180.0f}) {
    // Estimate uses the bucket containing the isovalue: allow the bucket-
    // granularity slack of intervals starting/ending inside the bucket.
    const auto exact = brute_count(infos, isovalue);
    const auto estimate = profile.active_estimate(isovalue);
    EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(exact),
                std::max(4.0, 0.1 * static_cast<double>(exact)));
  }
}

}  // namespace
}  // namespace oociso::index
