// Property-based suites: the pipeline's end-to-end invariants swept over
// datasets, isovalues, node counts, and metacell sizes via parameterized
// gtest. Each property is the repository-level statement of one of the
// paper's claims (correctness, I/O proportionality, balance, no extra work).

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "data/analytic_fields.h"
#include "data/rm_generator.h"
#include "extract/marching_cubes.h"
#include "io/serial.h"
#include "metacell/source.h"
#include "pipeline/query_engine.h"
#include "util/stats.h"

namespace oociso {
namespace {

using pipeline::PreprocessResult;
using pipeline::QueryEngine;
using pipeline::QueryOptions;
using pipeline::QueryReport;

core::VolumeU8 make_field(const std::string& name) {
  const core::GridDims dims{40, 40, 36};
  if (name == "sphere") return data::make_sphere_field(dims);
  if (name == "gyroid") return data::make_gyroid_field(dims);
  if (name == "torus") return data::make_torus_field(dims);
  data::RmConfig rm;
  rm.dims = dims;
  return data::generate_rm_timestep(rm, 170);
}

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

struct PropertyCase {
  std::string field;
  std::size_t nodes;
  std::int32_t samples_per_side;
  float isovalue;
};

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.field + "_p" + std::to_string(info.param.nodes) + "_k" +
         std::to_string(info.param.samples_per_side) + "_iso" +
         std::to_string(static_cast<int>(info.param.isovalue));
}

class PipelineProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const PropertyCase& param = GetParam();
    volume_ = make_field(param.field);
    cluster_.emplace(make_cluster_config(param.nodes));
    source_ = metacell::make_source(volume_, param.samples_per_side);
    pipeline::PreprocessConfig config;
    config.samples_per_side = param.samples_per_side;
    prep_.emplace(pipeline::preprocess(*source_, *cluster_, config));
  }

  static parallel::ClusterConfig make_cluster_config(std::size_t nodes) {
    parallel::ClusterConfig config;
    config.node_count = nodes;
    config.in_memory = true;
    return config;
  }

  core::VolumeU8 volume_{core::GridDims{2, 2, 2}};
  std::optional<parallel::Cluster> cluster_;
  std::unique_ptr<metacell::MetacellSource> source_;
  std::optional<PreprocessResult> prep_;
};

// Property 1 (correctness): the out-of-core pipeline produces exactly the
// triangles of the in-core marching-cubes reference.
TEST_P(PipelineProperty, MatchesInCoreReference) {
  QueryEngine engine(*cluster_, *prep_);
  QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  const QueryReport report = engine.run(GetParam().isovalue, options);

  extract::TriangleSoup reference;
  extract::extract_volume(volume_, GetParam().isovalue, reference);
  EXPECT_EQ(report.total_triangles(), reference.size());
  EXPECT_NEAR(report.triangles_out->total_area(), reference.total_area(),
              reference.total_area() * 1e-6 + 1e-6);
}

// Property 2 (exact retrieval): every active metacell is delivered exactly
// once across all nodes, and nothing inactive is delivered.
TEST_P(PipelineProperty, DeliversActiveSetExactlyOnce) {
  const float isovalue = GetParam().isovalue;
  std::set<std::uint32_t> expected;
  for (const auto& info : source_->scan()) {
    if (info.interval.stabs(isovalue)) expected.insert(info.id);
  }

  std::set<std::uint32_t> delivered;
  for (std::size_t d = 0; d < cluster_->size(); ++d) {
    prep_->trees[d].query(
        isovalue, cluster_->disk(d), [&](std::span<const std::byte> record) {
          io::ByteReader reader(record);
          const auto [it, inserted] =
              delivered.insert(reader.get<std::uint32_t>());
          EXPECT_TRUE(inserted) << "duplicate delivery";
        });
  }
  EXPECT_EQ(delivered, expected);
}

// Property 3 (I/O proportionality): per-node overshoot is bounded by the
// bricks scanned — the O(T/B + log n) bound's additive term.
TEST_P(PipelineProperty, OvershootBoundedByBricks) {
  const float isovalue = GetParam().isovalue;
  for (std::size_t d = 0; d < cluster_->size(); ++d) {
    const index::QueryStats stats =
        prep_->trees[d].query(isovalue, cluster_->disk(d), [](auto) {});
    EXPECT_LE(stats.records_fetched - stats.active_metacells,
              stats.bricks_scanned);
  }
}

// Property 4 (balance): per-node active counts differ by at most the
// number of bricks on the query path (+1).
TEST_P(PipelineProperty, NodeCountsNearlyEqual) {
  const float isovalue = GetParam().isovalue;
  std::vector<std::uint64_t> per_node;
  std::uint64_t max_bricks = 0;
  for (std::size_t d = 0; d < cluster_->size(); ++d) {
    const index::QueryStats stats =
        prep_->trees[d].query(isovalue, cluster_->disk(d), [](auto) {});
    per_node.push_back(stats.active_metacells);
    max_bricks = std::max(max_bricks, stats.bricks_scanned);
  }
  const auto [lo, hi] = std::minmax_element(per_node.begin(), per_node.end());
  EXPECT_LE(*hi - *lo, max_bricks + 1);
}

// Property 5 (no extra work): total metacells delivered across p nodes
// equals the serial delivery count.
TEST_P(PipelineProperty, TotalWorkEqualsSerial) {
  const float isovalue = GetParam().isovalue;
  std::uint64_t parallel_total = 0;
  for (std::size_t d = 0; d < cluster_->size(); ++d) {
    parallel_total += prep_->trees[d]
                          .query(isovalue, cluster_->disk(d), [](auto) {})
                          .active_metacells;
  }

  auto serial_cluster = make_cluster(1);
  const PreprocessResult serial_prep =
      pipeline::preprocess(*source_, serial_cluster,
                           {GetParam().samples_per_side, true});
  const std::uint64_t serial_total =
      serial_prep.trees[0]
          .query(isovalue, serial_cluster.disk(0), [](auto) {})
          .active_metacells;
  EXPECT_EQ(parallel_total, serial_total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Values(
        PropertyCase{"sphere", 1, 9, 128.0f},
        PropertyCase{"sphere", 4, 9, 80.0f},
        PropertyCase{"gyroid", 2, 9, 128.0f},
        PropertyCase{"gyroid", 4, 5, 100.0f},
        PropertyCase{"gyroid", 3, 17, 150.0f},
        PropertyCase{"torus", 2, 9, 200.0f},
        PropertyCase{"rm", 1, 9, 70.0f},
        PropertyCase{"rm", 4, 9, 128.0f},
        PropertyCase{"rm", 8, 9, 190.0f},
        PropertyCase{"rm", 5, 5, 60.0f}),
    case_name);

// ---------------------------------------------------------------------------
// Isovalue sweep invariants on one fixed configuration
// ---------------------------------------------------------------------------

class IsovalueSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsovalueSweep, PipelineMatchesReferenceEverywhere) {
  static const core::VolumeU8 volume = make_field("rm");
  static auto cluster = make_cluster(2);
  static const auto source = metacell::make_source(volume, 9);
  static const PreprocessResult prep = [&] {
    return pipeline::preprocess(*source, cluster);
  }();

  const auto isovalue = static_cast<float>(GetParam());
  QueryEngine engine(cluster, prep);
  QueryOptions options;
  options.render = false;
  const QueryReport report = engine.run(isovalue, options);

  extract::TriangleSoup reference;
  extract::extract_volume(volume, isovalue, reference);
  EXPECT_EQ(report.total_triangles(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(PaperRange, IsovalueSweep,
                         ::testing::Range(10, 211, 20));  // paper's 10..210

}  // namespace
}  // namespace oociso
