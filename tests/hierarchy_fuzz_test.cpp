// Differential fuzzing of the v5 hierarchy reader: seeded truncations and
// bit flips of a serialized tree's hierarchy section must surface as a
// *retriable* io::IoError (Kind::kCorruption) — never a crash, never a
// silently wrong coarse level. The section carries its own CRC32 trailer,
// so every single-bit flip inside it is detectable by construction; the
// fuzz sweep pins that the reader actually detects them all. Mutations to
// the sections *before* the hierarchy stay on the legacy error path (parse
// or throw, but never undefined behavior — ASan/UBSan give that teeth).
// Mirrors kernel_fuzz_test.cpp; carries the ctest label `hierarchy`.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/rm_generator.h"
#include "index/compact_interval_tree.h"
#include "io/io_error.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

/// A small but real v5 build: two striped in-memory stores, three total
/// resolution levels (two stored coarse levels).
std::vector<std::byte> build_v5_tree_bytes() {
  data::RmConfig config;
  config.dims = {32, 32, 30};
  const core::VolumeU8 volume = data::generate_rm_timestep(config, 200);
  const auto source = metacell::make_source(volume, 9);
  const std::vector<metacell::MetacellInfo> infos = source->scan();

  io::MemoryBlockDevice device_a(512);
  io::MemoryBlockDevice device_b(512);
  std::vector<io::BlockDevice*> devices{&device_a, &device_b};
  const CompactTreeBuilder::Result result = CompactTreeBuilder::build(
      infos, *source, devices, {}, codec::Codec::kRaw, {}, /*levels=*/3);

  const CompactIntervalTree& tree = result.trees.front();
  EXPECT_EQ(tree.format_version(), 5u);
  EXPECT_EQ(tree.hierarchy_levels(), 2u);
  return tree.to_bytes();
}

/// Expects from_bytes(data) to reject the mutation as hierarchy-section
/// corruption: a retriable kCorruption IoError, nothing else.
void expect_section_corruption(std::span<const std::byte> data,
                               const std::string& context) {
  try {
    const CompactIntervalTree tree = CompactIntervalTree::from_bytes(data);
    ADD_FAILURE() << context << ": corrupt section parsed successfully ("
                  << tree.hierarchy_levels() << " levels)";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kCorruption) << context;
    EXPECT_TRUE(error.retriable()) << context;
  } catch (const std::exception& error) {
    ADD_FAILURE() << context << ": wrong exception type: " << error.what();
  }
}

TEST(HierarchyFuzz, TruncationsOfTheLevelsSectionAreRetriableIoErrors) {
  const std::vector<std::byte> bytes = build_v5_tree_bytes();
  const CompactIntervalTree tree = CompactIntervalTree::from_bytes(bytes);
  const std::size_t section_bytes = tree.hierarchy_section_bytes();
  ASSERT_GT(section_bytes, 0u);
  ASSERT_LT(section_bytes, bytes.size());
  const std::size_t section_start = bytes.size() - section_bytes;

  // Every cut inside the section: drop the CRC trailer, cut mid-entry,
  // mid-header, right after the level count, at the section start.
  util::Xoshiro256 rng(0xC0FFEEu);
  std::vector<std::size_t> cuts = {section_start, section_start + 1,
                                   section_start + 4, bytes.size() - 1,
                                   bytes.size() - 4, bytes.size() - 5};
  for (int i = 0; i < 32; ++i) {
    cuts.push_back(section_start + rng.bounded(section_bytes));
  }
  for (const std::size_t cut : cuts) {
    expect_section_corruption(
        std::span(bytes).first(cut),
        "truncated to " + std::to_string(cut) + " of " +
            std::to_string(bytes.size()) + " bytes");
  }
}

TEST(HierarchyFuzz, BitFlipsInTheLevelsSectionAreRetriableIoErrors) {
  const std::vector<std::byte> bytes = build_v5_tree_bytes();
  const CompactIntervalTree tree = CompactIntervalTree::from_bytes(bytes);
  const std::size_t section_bytes = tree.hierarchy_section_bytes();
  const std::size_t section_start = bytes.size() - section_bytes;

  // Deterministic positions: the level count, a level header, entry
  // payload bytes across the section, and the CRC trailer itself — then a
  // seeded random sweep. The section checksum makes every one detectable.
  util::Xoshiro256 rng(0xB17F11Bu);
  std::vector<std::size_t> positions = {section_start, section_start + 3,
                                        section_start + 9, bytes.size() - 1,
                                        bytes.size() - 4};
  for (int i = 0; i < 128; ++i) {
    positions.push_back(section_start + rng.bounded(section_bytes));
  }
  for (const std::size_t position : positions) {
    for (const unsigned bit : {0u, 4u, 7u}) {
      std::vector<std::byte> mutated = bytes;
      mutated[position] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      expect_section_corruption(
          mutated, "bit " + std::to_string(bit) + " at byte " +
                       std::to_string(position) + " (section offset " +
                       std::to_string(position - section_start) + ")");
    }
  }
}

TEST(HierarchyFuzz, MutationsBeforeTheSectionNeverCrashOrCorruptLevels) {
  const std::vector<std::byte> bytes = build_v5_tree_bytes();
  const CompactIntervalTree reference = CompactIntervalTree::from_bytes(bytes);
  const std::size_t section_start =
      bytes.size() - reference.hierarchy_section_bytes();

  // Flips ahead of the hierarchy section hit the legacy (v2-v4) fields.
  // Those carry no section checksum, so a flip may parse (e.g. a brick
  // vmax changes) or throw either error type — the invariants are "no
  // crash" (ASan-backed) and "a successful parse is structurally sane".
  util::Xoshiro256 rng(0x5EC7104u);
  for (int trial = 0; trial < 192; ++trial) {
    const std::size_t position = rng.bounded(section_start);
    std::vector<std::byte> mutated = bytes;
    mutated[position] ^=
        std::byte{static_cast<unsigned char>(1u << rng.bounded(8))};
    try {
      const CompactIntervalTree tree = CompactIntervalTree::from_bytes(mutated);
      EXPECT_LE(tree.hierarchy_levels(), reference.hierarchy_levels())
          << "byte " << position;
    } catch (const std::exception&) {
      // Rejected — fine; any std::exception is a clean failure mode.
    }
  }
}

TEST(HierarchyFuzz, FlatTreeRejectsTrailingGarbageInsteadOfReadingLevels) {
  // A v2 document with extra bytes appended must not be misread as a v5
  // hierarchy — the version byte gates the section, and trailing bytes are
  // an explicit parse error.
  data::RmConfig config;
  config.dims = {32, 32, 30};
  const core::VolumeU8 volume = data::generate_rm_timestep(config, 200);
  const auto source = metacell::make_source(volume, 9);
  io::MemoryBlockDevice device(512);
  std::vector<io::BlockDevice*> devices{&device};
  const CompactTreeBuilder::Result result =
      CompactTreeBuilder::build(source->scan(), *source, devices);
  ASSERT_EQ(result.trees.front().format_version(), 2u);

  std::vector<std::byte> bytes = result.trees.front().to_bytes();
  bytes.insert(bytes.end(), 16, std::byte{0xAB});
  EXPECT_THROW(
      { (void)CompactIntervalTree::from_bytes(bytes); }, std::runtime_error);
}

}  // namespace
}  // namespace oociso::index
