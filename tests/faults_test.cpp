// Fault-tolerant query execution: deterministic injection, checksummed
// bricks, retry/backoff, and per-node failover. Carries the ctest label
// `faults` so CI can run the robustness suite on its own.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "data/rm_generator.h"
#include "index/compact_interval_tree.h"
#include "index/retrieval_stream.h"
#include "io/fault_injection.h"
#include "io/io_error.h"
#include "io/memory_block_device.h"
#include "io/retry_policy.h"
#include "io/serial.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "parallel/thread_pool.h"
#include "pipeline/query_engine.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/temp_dir.h"

namespace oociso {
namespace {

using metacell::MetacellInfo;

// ---------------------------------------------------------------------------
// CRC32 primitive
// ---------------------------------------------------------------------------

std::vector<std::byte> to_bytes(std::string_view text) {
  std::vector<std::byte> bytes(text.size());
  std::memcpy(bytes.data(), text.data(), text.size());
  return bytes;
}

TEST(Crc32, MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(util::crc32(std::span<const std::byte>(to_bytes("123456789"))),
            0xCBF43926u);
  EXPECT_EQ(util::crc32(std::span<const std::byte>()), 0u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const auto bytes = to_bytes("the quick brown fox jumps over the lazy dog");
  std::uint32_t state = util::crc32_init();
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    state = util::crc32_update(
        state, std::span(bytes).subspan(i, std::min<std::size_t>(
                                               7, bytes.size() - i)));
  }
  EXPECT_EQ(util::crc32_final(state),
            util::crc32(std::span<const std::byte>(bytes)));
}

TEST(Crc32, DetectsEverySingleBitFlip) {
  auto bytes = to_bytes("checksummed brick chunk payload");
  const std::uint32_t clean = util::crc32(std::span<const std::byte>(bytes));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<std::byte>(1 << bit);
      EXPECT_NE(util::crc32(std::span<const std::byte>(bytes)), clean);
      bytes[i] ^= static_cast<std::byte>(1 << bit);
    }
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy and FaultConfig parsing
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentially) {
  const io::RetryPolicy policy{
      .max_attempts = 5, .backoff_start_seconds = 0.25,
      .backoff_multiplier = 2.0, .backoff_max_seconds = 60.0};
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), 0.25);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(3), 2.0);
}

TEST(RetryPolicy, BackoffSaturatesAtTheCap) {
  // The exponential is a closed form clamped at backoff_max_seconds: a
  // large retry index can neither overflow to inf nor charge more modeled
  // stall than the cap — the bug the old loop of multiplications had.
  const io::RetryPolicy policy{.max_attempts = 1 << 20};
  const double cap = policy.backoff_max_seconds;
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(0), policy.backoff_start_seconds);
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(6), 0.064);  // still below the cap
  EXPECT_DOUBLE_EQ(policy.backoff_seconds(7), cap);    // 0.128 clamps
  for (const int index : {8, 64, 1024, (1 << 20) - 1}) {
    const double backoff = policy.backoff_seconds(index);
    EXPECT_TRUE(std::isfinite(backoff)) << index;
    EXPECT_DOUBLE_EQ(backoff, cap) << index;
  }
  // Monotone non-decreasing below and across the clamp point.
  for (int index = 1; index < 16; ++index) {
    EXPECT_GE(policy.backoff_seconds(index),
              policy.backoff_seconds(index - 1));
  }
  // A zero cap silences backoff entirely without going negative.
  const io::RetryPolicy muted{.backoff_max_seconds = 0.0};
  EXPECT_DOUBLE_EQ(muted.backoff_seconds(0), 0.0);
  EXPECT_DOUBLE_EQ(muted.backoff_seconds(12), 0.0);
}

TEST(FaultConfigParse, AcceptsSeedCommaRate) {
  const io::FaultConfig config = io::FaultConfig::parse("17,0.001");
  EXPECT_EQ(config.seed, 17u);
  EXPECT_DOUBLE_EQ(config.read_failure_rate, 0.001);
}

TEST(FaultConfigParse, RejectsMalformedSpecs) {
  EXPECT_THROW(io::FaultConfig::parse(""), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse("17"), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse("17,"), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse(",0.5"), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse("x,0.5"), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse("17,1.5"), std::invalid_argument);
  EXPECT_THROW(io::FaultConfig::parse("17,-0.1"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultInjectingBlockDevice
// ---------------------------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministicAndPredicted) {
  io::MemoryBlockDevice inner(512);
  std::vector<std::byte> payload(8 * 512);
  util::Xoshiro256 rng(7);
  for (auto& byte : payload) byte = static_cast<std::byte>(rng.bounded(256));
  inner.write(0, payload);

  io::FaultConfig config;
  config.seed = 99;
  config.read_failure_rate = 0.2;
  config.read_corruption_rate = 0.2;

  // Fate of read k: 0 = clean, 1 = corrupted in flight, 2 = failed.
  auto run_schedule = [&] {
    io::FaultInjectingBlockDevice device(inner, config);
    std::vector<int> fates;
    std::vector<std::byte> buffer(512);
    for (int k = 0; k < 50; ++k) {
      const std::uint64_t offset = (static_cast<std::uint64_t>(k) % 8) * 512;
      try {
        device.read(offset, buffer);
        const bool corrupted =
            std::memcmp(buffer.data(), payload.data() + offset, 512) != 0;
        if (corrupted) {
          // Exactly one flipped bit, and the backing store stayed clean.
          int flipped = 0;
          for (std::size_t i = 0; i < 512; ++i) {
            flipped += std::popcount(static_cast<unsigned>(
                buffer[i] ^ payload[offset + i]));
          }
          EXPECT_EQ(flipped, 1) << "read " << k;
        }
        fates.push_back(corrupted ? 1 : 0);
      } catch (const io::IoError& error) {
        EXPECT_EQ(error.kind(), io::IoError::Kind::kTransient);
        EXPECT_TRUE(error.retriable());
        fates.push_back(2);
      }
    }
    return fates;
  };

  const std::vector<int> first = run_schedule();
  const std::vector<int> second = run_schedule();
  EXPECT_EQ(first, second);  // same seed, same access sequence, same fates

  int clean = 0, corrupted = 0, failed = 0;
  for (int k = 0; k < 50; ++k) {
    const auto ordinal = static_cast<std::uint64_t>(k);
    const int expected =
        io::FaultInjectingBlockDevice::read_fails(config, ordinal)       ? 2
        : io::FaultInjectingBlockDevice::read_corrupts(config, ordinal)  ? 1
                                                                         : 0;
    EXPECT_EQ(first[static_cast<std::size_t>(k)], expected) << "read " << k;
    (expected == 0 ? clean : expected == 1 ? corrupted : failed) += 1;
  }
  // At rate 0.2 over 50 reads all three fates must appear.
  EXPECT_GT(clean, 0);
  EXPECT_GT(corrupted, 0);
  EXPECT_GT(failed, 0);
}

TEST(FaultInjector, ExplicitOrdinalsOverrideRates) {
  io::MemoryBlockDevice inner(512);
  inner.write(0, std::vector<std::byte>(1024, std::byte{0x5A}));
  io::FaultConfig config;
  config.fail_reads = {1};
  io::FaultInjectingBlockDevice device(inner, config);

  std::vector<std::byte> buffer(256);
  EXPECT_NO_THROW(device.read(0, buffer));     // read 0
  EXPECT_THROW(device.read(0, buffer), io::IoError);  // read 1, pinned
  EXPECT_NO_THROW(device.read(0, buffer));     // read 2
  EXPECT_EQ(device.injected().read_failures, 1u);
}

TEST(FaultInjector, TornWriteTransfersHalfThenThrows) {
  io::MemoryBlockDevice inner(512);
  io::FaultConfig config;
  config.write_torn_rate = 1.0;
  io::FaultInjectingBlockDevice device(inner, config);

  const std::vector<std::byte> data(100, std::byte{0x77});
  try {
    device.write(0, data);
    FAIL() << "torn write did not throw";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kTornWrite);
  }
  EXPECT_EQ(inner.size(), 50u);  // only the prefix reached the media
  EXPECT_EQ(device.injected().torn_writes, 1u);
}

TEST(FaultInjector, DeadDeviceFailsEveryRead) {
  io::MemoryBlockDevice inner(512);
  inner.write(0, std::vector<std::byte>(512, std::byte{0}));
  io::FaultConfig config;
  config.fail_all_reads = true;
  io::FaultInjectingBlockDevice device(inner, config);
  std::vector<std::byte> buffer(64);
  for (int k = 0; k < 5; ++k) {
    EXPECT_THROW(device.read(0, buffer), io::IoError);
  }
  EXPECT_EQ(device.injected().read_failures, 5u);
}

// ---------------------------------------------------------------------------
// RetrievalStream: verification + retry against a real brick layout
// ---------------------------------------------------------------------------

/// Controlled source (same shape as retrieval_stream_test's): tiny u8
/// records whose vmin/vmax match a prescribed interval exactly.
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(std::vector<MetacellInfo> infos)
      : infos_sorted_(std::move(infos)), geometry_({1026, 3, 3}, 2) {
    std::sort(infos_sorted_.begin(), infos_sorted_.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                return a.id < b.id;
              });
    for (const auto& info : infos_sorted_) by_id_[info.id] = info.interval;
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return infos_sorted_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::vector<MetacellInfo> infos_sorted_;
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

struct Built {
  std::unique_ptr<io::MemoryBlockDevice> device;
  index::CompactIntervalTree tree;
};

Built build_one(const std::vector<MetacellInfo>& infos) {
  Built built;
  built.device = std::make_unique<io::MemoryBlockDevice>(512);
  const FakeSource source(infos);
  io::BlockDevice* pointer = built.device.get();
  auto result = index::CompactTreeBuilder::build(infos, source, {&pointer, 1});
  built.tree = std::move(result.trees[0]);
  return built;
}

std::vector<std::uint32_t> drain_ids(index::RetrievalStream& stream) {
  std::vector<std::uint32_t> ids;
  while (std::optional<index::RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      io::ByteReader reader(batch->record(r));
      ids.push_back(reader.get<std::uint32_t>());
    }
  }
  return ids;
}

TEST(ChecksummedIndex, BuilderPersistsChunkCrcsThroughSerialization) {
  Built built = build_one(random_intervals(800, 120, 3));
  EXPECT_GT(built.tree.crc_chunk_records(), 0u);
  EXPECT_FALSE(built.tree.chunk_crcs().empty());

  const index::CompactIntervalTree reloaded =
      index::CompactIntervalTree::from_bytes(built.tree.to_bytes());
  EXPECT_EQ(reloaded.crc_chunk_records(), built.tree.crc_chunk_records());
  EXPECT_EQ(reloaded.chunk_crcs(), built.tree.chunk_crcs());

  const index::QueryPlan plan = built.tree.plan(60.0f);
  ASSERT_FALSE(plan.scans.empty());
  EXPECT_EQ(plan.crc_chunk_records, built.tree.crc_chunk_records());
  for (const auto& scan : plan.scans) {
    EXPECT_FALSE(scan.chunk_crcs.empty());
  }
}

TEST(VerifiedStream, AbsorbsTransientFaultWithOneRetry) {
  Built built = build_one(random_intervals(600, 100, 11));
  index::RetrievalStream clean_stream =
      index::open_stream(built.tree, 50.0f, *built.device);
  const std::vector<std::uint32_t> expected = drain_ids(clean_stream);
  ASSERT_FALSE(expected.empty());

  io::FaultConfig config;
  config.fail_reads = {0};  // first device read of the query fails once
  io::FaultInjectingBlockDevice device(*built.device, config);
  index::RetrievalStream stream =
      index::open_stream(built.tree, 50.0f, device);
  EXPECT_EQ(drain_ids(stream), expected);

  EXPECT_EQ(stream.faults().transient_errors, 1u);
  EXPECT_EQ(stream.faults().retries, 1u);
  EXPECT_EQ(stream.faults().checksum_failures, 0u);
  const io::RetryPolicy policy;
  EXPECT_DOUBLE_EQ(stream.faults().backoff_modeled_seconds,
                   policy.backoff_seconds(0));
}

TEST(VerifiedStream, ExhaustedRetriesPropagateTheError) {
  Built built = build_one(random_intervals(400, 80, 17));
  io::FaultConfig config;
  config.fail_all_reads = true;
  io::FaultInjectingBlockDevice device(*built.device, config);

  index::RetrievalOptions options;
  options.retry.max_attempts = 3;
  index::RetrievalStream stream =
      index::open_stream(built.tree, 40.0f, device, options);
  try {
    (void)drain_ids(stream);
    FAIL() << "exhausted retries did not propagate";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kTransient);
  }
  // max_attempts reads attempted; all but the last were retried.
  EXPECT_EQ(stream.faults().transient_errors, 3u);
  EXPECT_EQ(stream.faults().retries, 2u);
  EXPECT_EQ(device.injected().read_failures, 3u);
}

TEST(VerifiedStream, AbsorbsInFlightCorruptionByRereading) {
  Built built = build_one(random_intervals(600, 100, 23));
  index::RetrievalStream clean_stream =
      index::open_stream(built.tree, 50.0f, *built.device);
  const std::vector<std::uint32_t> expected = drain_ids(clean_stream);
  ASSERT_FALSE(expected.empty());

  io::FaultConfig config;
  config.corrupt_reads = {0};  // one bit of the first read flips in flight
  io::FaultInjectingBlockDevice device(*built.device, config);
  index::RetrievalStream stream =
      index::open_stream(built.tree, 50.0f, device);
  EXPECT_EQ(drain_ids(stream), expected);  // re-read returned clean bytes

  EXPECT_EQ(stream.faults().checksum_failures, 1u);
  EXPECT_EQ(stream.faults().retries, 1u);
  EXPECT_EQ(device.injected().corrupted_reads, 1u);
}

TEST(VerifiedStream, PersistentCorruptionExhaustsRetriesLoudly) {
  Built built = build_one(random_intervals(500, 90, 31));
  const index::QueryPlan plan = built.tree.plan(45.0f);
  ASSERT_FALSE(plan.scans.empty());

  // Flip one bit *in the store itself*: every re-read returns the same bad
  // byte, so retries cannot help and the error must surface.
  std::vector<std::byte> byte(1);
  built.device->read(plan.scans[0].offset, byte);
  byte[0] ^= std::byte{0x10};
  built.device->write(plan.scans[0].offset, byte);

  index::RetrievalOptions options;
  options.retry.max_attempts = 4;
  index::RetrievalStream stream(built.tree.plan(45.0f),
                                built.tree.scalar_kind(),
                                built.tree.record_size(), *built.device,
                                options);
  try {
    (void)drain_ids(stream);
    FAIL() << "persistent corruption went undetected";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kCorruption);
    EXPECT_NE(std::string(error.what()).find("checksum mismatch"),
              std::string::npos);
  }
  EXPECT_EQ(stream.faults().checksum_failures, 4u);

  // The same store read without verification delivers the bad bytes
  // silently — which is exactly why verification defaults to on.
  index::RetrievalOptions unverified;
  unverified.verify_checksums = false;
  index::RetrievalStream blind(built.tree.plan(45.0f),
                               built.tree.scalar_kind(),
                               built.tree.record_size(), *built.device,
                               unverified);
  EXPECT_NO_THROW((void)drain_ids(blind));
  EXPECT_EQ(blind.faults().checksum_failures, 0u);
}

// ---------------------------------------------------------------------------
// Error-collecting parallel execution
// ---------------------------------------------------------------------------

TEST(ParallelForCollect, ReturnsOnePointerPerIndex) {
  parallel::ThreadPool pool(4);
  const std::vector<std::exception_ptr> errors =
      parallel::parallel_for_collect(pool, 5, [](std::size_t i) {
        if (i == 1 || i == 3) {
          throw std::runtime_error("task " + std::to_string(i) + " died");
        }
      });
  ASSERT_EQ(errors.size(), 5u);
  for (const std::size_t i : {0u, 2u, 4u}) EXPECT_FALSE(errors[i]) << i;
  for (const std::size_t i : {1u, 3u}) {
    ASSERT_TRUE(errors[i]) << i;
    try {
      std::rethrow_exception(errors[i]);
    } catch (const std::runtime_error& error) {
      EXPECT_EQ(std::string(error.what()),
                "task " + std::to_string(i) + " died");
    }
  }
}

TEST(ParallelFor, SingleFailureRethrowsUnchanged) {
  parallel::ThreadPool pool(2);
  try {
    parallel::parallel_for(pool, 4, [](std::size_t i) {
      if (i == 2) throw std::invalid_argument("just me");
    });
    FAIL() << "did not throw";
  } catch (const std::invalid_argument& error) {
    EXPECT_EQ(std::string(error.what()), "just me");
  }
}

TEST(ParallelFor, MultiFailureMessageCountsTheOthers) {
  parallel::ThreadPool pool(4);
  try {
    parallel::parallel_for(pool, 6, [](std::size_t i) {
      if (i % 2 == 0) {
        throw std::runtime_error("task " + std::to_string(i) + " died");
      }
    });
    FAIL() << "did not throw";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("task 0 died"), std::string::npos) << what;
    EXPECT_NE(what.find("2 other parallel task(s) also failed"),
              std::string::npos)
        << what;
  }
}

TEST(Cluster, OpenReadonlyServesReadsAndRefusesWrites) {
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const std::vector<std::byte> payload(256, std::byte{0x42});
  cluster.disk(1).write(0, payload);

  const std::unique_ptr<io::BlockDevice> store = cluster.open_readonly(1);
  EXPECT_EQ(store->size(), cluster.disk(1).size());
  std::vector<std::byte> buffer(256);
  store->read(0, buffer);
  EXPECT_EQ(buffer, payload);
  EXPECT_THROW(store->write(0, payload), std::logic_error);
}

// ---------------------------------------------------------------------------
// Query-engine failover
// ---------------------------------------------------------------------------

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return config;
}

bool same_triangles(const extract::TriangleSoup& a,
                    const extract::TriangleSoup& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.triangles().data(), b.triangles().data(),
                      a.size() * sizeof(extract::Triangle)) == 0);
}

// The acceptance scenario: an 8-node in-memory query under seeded faults —
// transient failures at rate 1e-3, at least one corrupted brick read, and
// one node whose disk is dead (exhausts its retry budget) — completes with
// a bit-identical mesh, the degraded flag set, and exact fault counts.
TEST(Failover, EightNodeSeededFaultsProduceBitIdenticalMesh) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(8);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions clean;
  clean.render = false;
  clean.keep_triangles = true;
  const pipeline::QueryReport reference = engine.run(128.0f, clean);
  ASSERT_GT(reference.total_triangles(), 0u);
  EXPECT_FALSE(reference.degraded);

  pipeline::QueryOptions faulty = clean;
  io::FaultConfig faults;
  faults.seed = 2026;
  faults.read_failure_rate = 1e-3;
  faults.corrupt_reads = {1};  // every surviving node's read #1 flips a bit
  faulty.inject_faults = faults;
  faulty.dead_nodes = {3};
  const pipeline::QueryReport report = engine.run(128.0f, faulty);

  // The mesh is complete and bit-identical to the clean run.
  ASSERT_TRUE(report.triangles_out && reference.triangles_out);
  EXPECT_TRUE(same_triangles(*report.triangles_out, *reference.triangles_out));
  EXPECT_EQ(report.total_active_metacells(),
            reference.total_active_metacells());
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.total_failovers(), 1u);

  // The dead node exhausted its retry budget and node 4 took over.
  const auto attempts =
      static_cast<std::uint64_t>(faulty.retrieval.retry.max_attempts);
  const pipeline::FaultReport& dead = report.nodes[3].faults;
  EXPECT_EQ(dead.failovers, 1u);
  EXPECT_EQ(dead.executed_by, 4);
  EXPECT_FALSE(dead.error.empty());
  EXPECT_EQ(dead.retrieval.transient_errors, attempts);
  EXPECT_EQ(dead.retrieval.retries, attempts - 1);
  EXPECT_EQ(dead.injected_read_failures, attempts);

  // Exact cross-check on every node: everything the injector did was seen
  // (and, on surviving nodes, absorbed at one retry per fault).
  std::uint64_t corrupted_total = 0;
  for (std::size_t node = 0; node < 8; ++node) {
    const pipeline::FaultReport& node_faults = report.nodes[node].faults;
    EXPECT_EQ(node_faults.retrieval.transient_errors,
              node_faults.injected_read_failures)
        << "node " << node;
    EXPECT_EQ(node_faults.retrieval.checksum_failures,
              node_faults.injected_corrupted_reads)
        << "node " << node;
    corrupted_total += node_faults.injected_corrupted_reads;
    if (node == 3) continue;
    EXPECT_EQ(node_faults.failovers, 0u) << "node " << node;
    EXPECT_EQ(node_faults.executed_by, static_cast<std::int32_t>(node));
    EXPECT_TRUE(node_faults.error.empty()) << "node " << node;
    EXPECT_EQ(node_faults.retrieval.retries,
              node_faults.retrieval.transient_errors +
                  node_faults.retrieval.checksum_failures)
        << "node " << node;
  }
  EXPECT_GE(corrupted_total, 1u);  // ">= 1 corrupted brick read" held
}

TEST(Failover, FileBackedPeerReopensTheStore) {
  util::TempDir storage("oociso-faults");
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage.path();
  parallel::Cluster cluster(config);

  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions clean;
  clean.render = false;
  clean.keep_triangles = true;
  const pipeline::QueryReport reference = engine.run(128.0f, clean);

  pipeline::QueryOptions faulty = clean;
  faulty.dead_nodes = {1};
  const pipeline::QueryReport report = engine.run(128.0f, faulty);
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.nodes[1].faults.executed_by, 0);
  EXPECT_TRUE(same_triangles(*report.triangles_out, *reference.triangles_out));
}

TEST(Failover, DisabledFailoverRethrowsTheNodeError) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions options;
  options.render = false;
  options.dead_nodes = {0};
  options.failover = false;
  EXPECT_THROW(engine.run(128.0f, options), io::IoError);
}

TEST(Failover, AllNodesDeadPropagatesTheFirstError) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions options;
  options.render = false;
  options.dead_nodes = {0, 1};
  EXPECT_THROW(engine.run(128.0f, options), io::IoError);
}

TEST(Failover, BackoffAndStallsWidenModeledCompletionOnly) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions clean;
  clean.render = false;
  clean.keep_triangles = true;
  clean.overlap_io_compute = false;  // deterministic modeled completion
  const pipeline::QueryReport reference = engine.run(128.0f, clean);

  pipeline::QueryOptions faulty = clean;
  io::FaultConfig faults;
  faults.seed = 5;
  faults.stall_rate = 1.0;  // every read stalls (modeled, never slept)
  faults.stall_seconds = 0.010;
  faulty.inject_faults = faults;
  const pipeline::QueryReport report = engine.run(128.0f, faulty);

  EXPECT_TRUE(same_triangles(*report.triangles_out, *reference.triangles_out));
  EXPECT_FALSE(report.degraded);
  // Same disk blocks, same pure disk price...
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_EQ(report.nodes[node].io.blocks_read,
              reference.nodes[node].io.blocks_read);
    EXPECT_DOUBLE_EQ(report.nodes[node].io_model_seconds,
                     reference.nodes[node].io_model_seconds);
    EXPECT_GT(report.nodes[node].faults.stall_modeled_seconds, 0.0);
  }
  // ...but the stall penalty widens the modeled retrieval phase.
  EXPECT_GT(report.times.max_phase(parallel::Phase::kAmcRetrieval),
            reference.times.max_phase(parallel::Phase::kAmcRetrieval));
}

}  // namespace
}  // namespace oociso
