#include <gtest/gtest.h>

#include "compositing/sort_last.h"
#include "compositing/tiled_display.h"
#include "util/rng.h"

namespace oociso::compositing {
namespace {

using render::Framebuffer;

Framebuffer random_frame(std::int32_t w, std::int32_t h, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Framebuffer fb(w, h);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      if (rng.uniform() < 0.5) {
        fb.plot(x, y, static_cast<float>(rng.uniform(1.0, 50.0)),
                {static_cast<std::uint8_t>(rng.bounded(256)),
                 static_cast<std::uint8_t>(rng.bounded(256)), 7});
      }
    }
  }
  return fb;
}

bool images_equal(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (std::int32_t y = 0; y < a.height(); ++y) {
    for (std::int32_t x = 0; x < a.width(); ++x) {
      if (a.color_at(x, y) != b.color_at(x, y)) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

TEST(TileLayoutTest, RectsPartitionTheDisplay) {
  const TileLayout layout{3, 4};
  std::uint64_t covered = 0;
  for (std::int32_t t = 0; t < layout.tile_count(); ++t) {
    const auto rect = layout.tile_rect(t, 101, 67);  // deliberately uneven
    EXPECT_GT(rect.width(), 0);
    EXPECT_GT(rect.height(), 0);
    covered += rect.pixels();
  }
  EXPECT_EQ(covered, 101u * 67u);
}

TEST(TileLayoutTest, LastRowColumnAbsorbRemainder) {
  const TileLayout layout{2, 2};
  const auto last = layout.tile_rect(3, 101, 67);
  EXPECT_EQ(last.x1, 101);
  EXPECT_EQ(last.y1, 67);
  EXPECT_EQ(last.width(), 51);   // 101 - 50
  EXPECT_EQ(last.height(), 34);  // 67 - 33
}

class TiledEqualsSortLast
    : public ::testing::TestWithParam<std::pair<std::int32_t, std::int32_t>> {};

TEST_P(TiledEqualsSortLast, AssembledWallMatchesDirectSend) {
  const auto [rows, cols] = GetParam();
  std::vector<Framebuffer> frames;
  for (int i = 0; i < 5; ++i) frames.push_back(random_frame(64, 48, 40 + i));

  const CompositeResult reference = direct_send(frames);
  const TiledDisplayResult tiled =
      composite_to_tiles(frames, TileLayout{rows, cols});
  ASSERT_EQ(tiled.tiles.size(),
            static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  const Framebuffer wall = assemble(tiled, 64, 48);
  EXPECT_TRUE(images_equal(reference.image, wall))
      << rows << "x" << cols << " wall differs from sort-last reference";
}

INSTANTIATE_TEST_SUITE_P(Layouts, TiledEqualsSortLast,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{1, 4}, std::pair{4, 1},
                                           std::pair{3, 3}),
                         [](const auto& info) {
                           return std::to_string(info.param.first) + "x" +
                                  std::to_string(info.param.second);
                         });

TEST(TiledTraffic, AccountsEveryRoutedRegion) {
  std::vector<Framebuffer> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(random_frame(32, 32, i));
  const TiledDisplayResult tiled = composite_to_tiles(frames, TileLayout{2, 2});

  // Every render node ships its whole framebuffer (split across tiles).
  const std::uint64_t per_node =
      32ull * 32ull * Framebuffer::bytes_per_pixel();
  EXPECT_EQ(tiled.traffic.bytes_total, 4 * per_node);
  EXPECT_EQ(tiled.traffic.messages, 16u);  // 4 nodes x 4 tiles
  EXPECT_EQ(tiled.traffic.rounds, 1u);
  // The busiest participant is a display node receiving p tile-regions.
  EXPECT_EQ(tiled.traffic.max_node_bytes, per_node);
}

TEST(TiledErrors, RejectBadInputs) {
  EXPECT_THROW(composite_to_tiles({}, TileLayout{2, 2}),
               std::invalid_argument);
  std::vector<Framebuffer> tiny;
  tiny.emplace_back(2, 2);
  EXPECT_THROW(composite_to_tiles(tiny, TileLayout{4, 4}),
               std::invalid_argument);
  EXPECT_THROW(composite_to_tiles(tiny, TileLayout{0, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace oociso::compositing
