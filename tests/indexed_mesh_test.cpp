#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "data/analytic_fields.h"
#include "extract/indexed_mesh.h"
#include "extract/marching_cubes.h"
#include "unstructured/marching_tets.h"
#include "unstructured/tet_mesh.h"
#include "util/temp_dir.h"

namespace oociso::extract {
namespace {

using core::Vec3;

TriangleSoup two_triangles_sharing_an_edge() {
  TriangleSoup soup;
  soup.add({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  soup.add({{1, 0, 0}, {1, 1, 0}, {0, 1, 0}});
  return soup;
}

TEST(Weld, SharedVerticesMerge) {
  const IndexedMesh mesh = IndexedMesh::weld(two_triangles_sharing_an_edge());
  EXPECT_EQ(mesh.vertex_count(), 4u);  // 6 soup vertices -> 4 welded
  EXPECT_EQ(mesh.triangle_count(), 2u);
  EXPECT_EQ(mesh.edge_count(), 5u);
  EXPECT_EQ(mesh.connected_components(), 1u);
}

TEST(Weld, DropsDegenerateTriangles) {
  TriangleSoup soup;
  soup.add({{0, 0, 0}, {0, 0, 0}, {1, 0, 0}});          // repeated vertex
  soup.add({{0, 0, 0}, {1, 0, 0}, {2, 0, 0}});          // collinear
  soup.add({{0, 0, 0}, {1, 0, 0}, {0, 1, 0}});          // valid
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  EXPECT_EQ(mesh.triangle_count(), 1u);
}

TEST(Weld, NegativeZeroWeldsWithPositiveZero) {
  TriangleSoup soup;
  soup.add({{0.0f, 0, 0}, {1, 0, 0}, {0, 1, 0}});
  soup.add({{-0.0f, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  EXPECT_EQ(mesh.vertex_count(), 4u);  // (+-0,0,0) merged; (0,1,0) shared
}

TEST(Weld, EmptySoup) {
  const IndexedMesh mesh = IndexedMesh::weld({});
  EXPECT_EQ(mesh.vertex_count(), 0u);
  EXPECT_EQ(mesh.connected_components(), 0u);
}

TEST(Normals, FlatPatchPointsOneWay) {
  const IndexedMesh mesh = IndexedMesh::weld(two_triangles_sharing_an_edge());
  for (const Vec3& n : mesh.vertex_normals()) {
    EXPECT_NEAR(std::abs(n.z), 1.0f, 1e-6f);
    EXPECT_NEAR(n.x, 0.0f, 1e-6f);
  }
}

TEST(Topology, McSphereIsClosedGenusZero) {
  // A marching-cubes sphere welds into one closed component with Euler
  // characteristic 2 — the strongest cheap correctness check of both the
  // extraction tables and exact welding.
  const auto volume = data::make_sphere_field({40, 40, 40});
  TriangleSoup soup;
  extract_volume(volume, 126.5f, soup);  // off-integer iso: no exact hits
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  EXPECT_EQ(mesh.connected_components(), 1u);
  EXPECT_TRUE(mesh.is_closed());
  EXPECT_EQ(mesh.euler_characteristic(), 2);
}

TEST(Topology, McTorusHasEulerZero) {
  const auto volume = data::make_torus_field({48, 48, 48});
  TriangleSoup soup;
  extract_volume(volume, 200.5f, soup);
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  ASSERT_GT(mesh.triangle_count(), 100u);
  EXPECT_EQ(mesh.connected_components(), 1u);
  EXPECT_TRUE(mesh.is_closed());
  EXPECT_EQ(mesh.euler_characteristic(), 0);
}

TEST(Topology, MarchingTetsSphereIsClosed) {
  const auto mesh_in = unstructured::make_tet_mesh(
      {.cells = 10, .seed = 3, .jitter = 0.3f},
      unstructured::TetField::kSphere);
  TriangleSoup soup;
  unstructured::extract_tet_mesh(mesh_in, 126.3f, soup);
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  EXPECT_EQ(mesh.connected_components(), 1u);
  EXPECT_TRUE(mesh.is_closed());
  EXPECT_EQ(mesh.euler_characteristic(), 2);
}

TEST(Topology, AreaSurvivesWelding) {
  const auto volume = data::make_gyroid_field({32, 32, 32});
  TriangleSoup soup;
  extract_volume(volume, 128.0f, soup);
  const IndexedMesh mesh = IndexedMesh::weld(soup);
  EXPECT_NEAR(mesh.total_area(), soup.total_area(), soup.total_area() * 1e-4);
}

TEST(ObjOutput, ContainsNormalsAndSharedIndices) {
  util::TempDir dir;
  const IndexedMesh mesh = IndexedMesh::weld(two_triangles_sharing_an_edge());
  const auto path = dir.file("mesh.obj");
  mesh.write_obj(path);
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("vn "), std::string::npos);
  EXPECT_NE(text.find("//"), std::string::npos);
  // 4 welded position lines, not 6.
  std::size_t position_lines = 0;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("v ", 0) == 0) ++position_lines;
  }
  EXPECT_EQ(position_lines, mesh.vertex_count());
}

}  // namespace
}  // namespace oociso::extract
