#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>

#include "index/compact_interval_tree.h"
#include "index/external_tree.h"
#include "io/buffer_pool.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

/// Minimal controlled source (mirrors index_test's FakeSource).
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(const std::vector<MetacellInfo>& infos)
      : geometry_({1026, 3, 3}, 2) {
    for (const auto& info : infos) by_id_[info.id] = info.interval;
  }
  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override { return {}; }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

struct Fixture {
  std::unique_ptr<io::MemoryBlockDevice> brick_device;
  std::unique_ptr<io::MemoryBlockDevice> index_device;
  CompactIntervalTree in_core;
  ExternalCompactTree external;
};

Fixture make_fixture(const std::vector<MetacellInfo>& infos,
                     std::uint32_t index_block_bytes = 512) {
  Fixture fixture;
  fixture.brick_device = std::make_unique<io::MemoryBlockDevice>(512);
  fixture.index_device = std::make_unique<io::MemoryBlockDevice>(512);
  const FakeSource source(infos);
  io::BlockDevice* brick_ptr = fixture.brick_device.get();
  auto built = CompactTreeBuilder::build(infos, source, {&brick_ptr, 1});
  fixture.in_core = std::move(built.trees[0]);
  fixture.external = ExternalCompactTree::build(
      fixture.in_core, *fixture.index_device, index_block_bytes);
  return fixture;
}

bool plans_equal(const QueryPlan& a, const QueryPlan& b) {
  if (a.scans.size() != b.scans.size()) return false;
  if (a.nodes_visited != b.nodes_visited) return false;
  for (std::size_t i = 0; i < a.scans.size(); ++i) {
    if (a.scans[i].offset != b.scans[i].offset ||
        a.scans[i].metacell_count != b.scans[i].metacell_count ||
        a.scans[i].full != b.scans[i].full) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

class ExternalTreeEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint32_t>> {};

TEST_P(ExternalTreeEquivalence, PlansMatchInCoreTreeEverywhere) {
  const auto [count, block_bytes] = GetParam();
  const auto infos = random_intervals(count, 120, 7 + count);
  Fixture fixture = make_fixture(infos, block_bytes);

  for (std::uint32_t v = 0; v <= 121; ++v) {
    const auto isovalue = static_cast<core::ValueKey>(v);
    const QueryPlan reference = fixture.in_core.plan(isovalue);
    const QueryPlan external =
        fixture.external.plan(isovalue, *fixture.index_device);
    EXPECT_TRUE(plans_equal(reference, external)) << "isovalue " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalTreeEquivalence,
    ::testing::Values(std::pair{std::size_t{1}, 512u},
                      std::pair{std::size_t{50}, 512u},
                      std::pair{std::size_t{500}, 256u},
                      std::pair{std::size_t{2000}, 128u},  // tiny blocks
                      std::pair{std::size_t{2000}, 4096u}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.first) + "_b" +
             std::to_string(info.param.second);
    });

TEST(ExternalTree, ExecutesThroughSharedRetrievalStream) {
  const auto infos = random_intervals(800, 60, 11);
  Fixture fixture = make_fixture(infos);

  for (const float isovalue : {12.0f, 30.0f, 55.0f}) {
    std::uint64_t blocks_read = 0;
    RetrievalStream stream = fixture.external.open_stream(
        isovalue, *fixture.index_device, *fixture.brick_device, &blocks_read);
    std::set<std::uint32_t> delivered;
    while (std::optional<RecordBatch> batch = stream.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        io::ByteReader reader(batch->record(r));
        delivered.insert(reader.get<std::uint32_t>());
      }
    }
    EXPECT_GE(blocks_read, 1u);
    std::set<std::uint32_t> expected;
    for (const auto& info : infos) {
      if (info.interval.stabs(isovalue)) expected.insert(info.id);
    }
    EXPECT_EQ(delivered, expected) << isovalue;
    EXPECT_EQ(stream.stats().active_metacells, expected.size()) << isovalue;
  }
}

TEST(ExternalTree, StreamThroughBufferPoolMatchesDirect) {
  const auto infos = random_intervals(600, 80, 19);
  Fixture fixture = make_fixture(infos, 256);

  io::BufferPool pool(*fixture.index_device, 4);
  for (const float isovalue : {20.0f, 45.0f}) {
    RetrievalStream direct = fixture.external.open_stream(
        isovalue, *fixture.index_device, *fixture.brick_device);
    RetrievalStream cached = fixture.external.open_stream(
        isovalue, pool, *fixture.brick_device);
    std::set<std::uint32_t> from_direct;
    std::set<std::uint32_t> from_cached;
    while (std::optional<RecordBatch> batch = direct.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        io::ByteReader reader(batch->record(r));
        from_direct.insert(reader.get<std::uint32_t>());
      }
    }
    while (std::optional<RecordBatch> batch = cached.next()) {
      for (std::size_t r = 0; r < batch->record_count; ++r) {
        io::ByteReader reader(batch->record(r));
        from_cached.insert(reader.get<std::uint32_t>());
      }
    }
    EXPECT_EQ(from_direct, from_cached) << isovalue;
  }
}

TEST(ExternalTree, BlockReadsAreLogarithmicInBlocks) {
  const auto infos = random_intervals(5000, 250, 13);
  Fixture fixture = make_fixture(infos, 256);  // force many small blocks
  ASSERT_GT(fixture.external.build_stats().blocks, 4u);

  for (const float isovalue : {10.0f, 100.0f, 240.0f}) {
    std::uint64_t blocks_read = 0;
    (void)fixture.external.plan(isovalue, *fixture.index_device, &blocks_read);
    EXPECT_GE(blocks_read, 1u);
    EXPECT_LE(blocks_read, fixture.external.build_stats().max_block_depth);
  }
  // The blocked tree is strictly shallower (in blocks) than the binary tree
  // is in nodes, unless blocks hold single nodes.
  EXPECT_LE(fixture.external.build_stats().max_block_depth,
            fixture.in_core.height());
}

TEST(ExternalTree, LargerBlocksMeanFewerReads) {
  const auto infos = random_intervals(5000, 250, 17);
  Fixture small = make_fixture(infos, 128);
  Fixture large = make_fixture(infos, 8192);

  std::uint64_t small_reads = 0;
  std::uint64_t large_reads = 0;
  (void)small.external.plan(125.0f, *small.index_device, &small_reads);
  (void)large.external.plan(125.0f, *large.index_device, &large_reads);
  EXPECT_LT(large_reads, small_reads);
}

TEST(ExternalTree, BufferPoolCachesRepeatedWalks) {
  const auto infos = random_intervals(3000, 200, 19);
  Fixture fixture = make_fixture(infos, 256);

  io::BufferPool pool(*fixture.index_device, /*capacity_blocks=*/256);
  fixture.index_device->reset_stats();

  std::uint64_t first_reads = 0;
  (void)fixture.external.plan(77.0f, pool, &first_reads);
  const auto misses_after_first = pool.misses();
  EXPECT_GT(misses_after_first, 0u);

  // The same walk again: every index block is resident.
  (void)fixture.external.plan(77.0f, pool, nullptr);
  EXPECT_EQ(pool.misses(), misses_after_first);
  EXPECT_GT(pool.hits(), 0u);
}

TEST(ExternalTree, EmptyTreeYieldsEmptyPlan) {
  Fixture fixture = make_fixture({});
  std::uint64_t reads = 99;
  const QueryPlan plan =
      fixture.external.plan(5.0f, *fixture.index_device, &reads);
  EXPECT_TRUE(plan.scans.empty());
  EXPECT_EQ(reads, 0u);
  EXPECT_EQ(fixture.external.build_stats().blocks, 0u);
}

TEST(ExternalTree, RejectsAbsurdBlockSize) {
  const auto infos = random_intervals(10, 8, 23);
  const FakeSource source(infos);
  io::MemoryBlockDevice brick_device(512);
  io::BlockDevice* ptr = &brick_device;
  auto built = CompactTreeBuilder::build(infos, source, {&ptr, 1});
  io::MemoryBlockDevice index_device(512);
  EXPECT_THROW(ExternalCompactTree::build(built.trees[0], index_device, 16),
               std::invalid_argument);
}

}  // namespace
}  // namespace oociso::index
