#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "parallel/cluster.h"
#include "parallel/cost_model.h"
#include "parallel/pipeline.h"
#include "parallel/thread_pool.h"
#include "parallel/time_ledger.h"
#include "util/temp_dir.h"

namespace oociso::parallel {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::set<std::size_t> seen;
  parallel_for(pool, 20, [&](std::size_t i) {
    std::lock_guard lock(mutex);
    seen.insert(i);
  });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(ThreadPoolTest, ParallelForRethrows) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// ---------------------------------------------------------------------------
// Cost models
// ---------------------------------------------------------------------------

TEST(NetworkModelTest, PricesLatencyAndBandwidth) {
  NetworkModel model;
  model.latency_seconds = 1e-5;
  model.bandwidth_bytes_per_s = 1e9;
  EXPECT_DOUBLE_EQ(model.seconds(10, 2'000'000'000), 1e-4 + 2.0);
  EXPECT_DOUBLE_EQ(model.seconds(0, 0), 0.0);
}

TEST(NetworkModelTest, DefaultIsTenGigabit) {
  const NetworkModel model;
  // 1.25 GB at 10 Gb/s == 1 s of transfer.
  EXPECT_NEAR(model.seconds(0, 1'250'000'000), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// TimeLedger
// ---------------------------------------------------------------------------

TEST(TimeLedgerTest, AccumulatesPerPhase) {
  TimeLedger ledger;
  ledger.add(Phase::kAmcRetrieval, 1.0);
  ledger.add(Phase::kAmcRetrieval, 0.5);
  ledger.add(Phase::kTriangulation, 2.0);
  EXPECT_DOUBLE_EQ(ledger.get(Phase::kAmcRetrieval), 1.5);
  EXPECT_DOUBLE_EQ(ledger.total(), 3.5);
  ledger.reset();
  EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
}

TEST(ClusterTimesTest, CompletionIsMaxPerPhase) {
  ClusterTimes times;
  times.per_node.resize(2);
  times.per_node[0].add(Phase::kAmcRetrieval, 1.0);
  times.per_node[0].add(Phase::kTriangulation, 1.0);
  times.per_node[1].add(Phase::kAmcRetrieval, 3.0);
  times.per_node[1].add(Phase::kTriangulation, 0.5);
  // Barrier semantics: max(1,3) + max(1,0.5) = 4.
  EXPECT_DOUBLE_EQ(times.completion_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(times.total_work_seconds(), 5.5);
  EXPECT_DOUBLE_EQ(times.max_phase(Phase::kAmcRetrieval), 3.0);
  EXPECT_DOUBLE_EQ(times.sum_phase(Phase::kTriangulation), 1.5);
}

TEST(PhaseNames, AreHumanReadable) {
  EXPECT_EQ(phase_name(Phase::kAmcRetrieval), "amc-retrieval");
  EXPECT_EQ(phase_name(Phase::kCompositing), "compositing");
}

TEST(TimeLedgerTest, OverlappedExtractionChargesPhasesInFull) {
  TimeLedger ledger;
  ledger.add_extraction_overlapped(/*io=*/3.0, /*cpu=*/2.0, /*residue=*/0.5);
  // Per-phase reporting is unchanged by overlap...
  EXPECT_DOUBLE_EQ(ledger.get(Phase::kAmcRetrieval), 3.0);
  EXPECT_DOUBLE_EQ(ledger.get(Phase::kTriangulation), 2.0);
  EXPECT_DOUBLE_EQ(ledger.total(), 5.0);  // work is not reduced
  // ...but the node's extraction span is the pipelined window.
  EXPECT_TRUE(ledger.extraction_overlapped());
  EXPECT_DOUBLE_EQ(ledger.overlap_saved(), 5.0 - (3.0 + 0.5));
  EXPECT_DOUBLE_EQ(ledger.extraction_seconds(), 3.5);
}

TEST(TimeLedgerTest, OverlapNeverInflatesTheWindow) {
  // Degenerate pipelines (residue larger than the hideable part) must not
  // produce negative savings.
  TimeLedger ledger;
  ledger.add_extraction_overlapped(/*io=*/1.0, /*cpu=*/0.1, /*residue=*/5.0);
  EXPECT_DOUBLE_EQ(ledger.overlap_saved(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.extraction_seconds(), 1.1);
  ledger.reset();
  EXPECT_FALSE(ledger.extraction_overlapped());
  EXPECT_DOUBLE_EQ(ledger.overlap_saved(), 0.0);
}

TEST(ClusterTimesTest, OverlappedCompletionIsMaxOfNodeWindows) {
  ClusterTimes times;
  times.per_node.resize(2);
  // Node 0: io 3, cpu 2, fill 0.5 -> window 3.5. Node 1: io 1, cpu 4,
  // fill 0.25 -> window 4.25.
  times.per_node[0].add_extraction_overlapped(3.0, 2.0, 0.5);
  times.per_node[1].add_extraction_overlapped(1.0, 4.0, 0.25);
  EXPECT_DOUBLE_EQ(times.extraction_completion_seconds(), 4.25);
  // Strictly better than the barrier view max(3,1) + max(2,4) = 7, and the
  // work totals still see the full phase times.
  EXPECT_LT(times.extraction_completion_seconds(),
            times.max_phase(Phase::kAmcRetrieval) +
                times.max_phase(Phase::kTriangulation));
  EXPECT_DOUBLE_EQ(times.total_work_seconds(), 10.0);
  times.per_node[0].add(Phase::kRendering, 1.0);
  EXPECT_DOUBLE_EQ(times.completion_seconds(), 5.25);
}

// ---------------------------------------------------------------------------
// BoundedQueue / produce_consume
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, DeliversInOrderAcrossThreads) {
  BoundedQueue<int> queue(3);
  std::vector<int> received;
  std::thread producer([&queue] {
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(queue.push(i));
    queue.close();
  });
  while (std::optional<int> item = queue.pop()) received.push_back(*item);
  producer.join();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueTest, CapacityBoundsProducerLead) {
  BoundedQueue<int> queue(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) {
      queue.push(i);
      ++pushed;
    }
    queue.close();
  });
  // Give the producer time to run ahead as far as the queue allows: it can
  // complete at most capacity pushes (plus one in-flight) without a pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LE(pushed.load(), 3);
  while (queue.pop().has_value()) {
  }
  producer.join();
  EXPECT_EQ(pushed.load(), 10);
}

TEST(BoundedQueueTest, CloseUnblocksPushAndDrainsItems) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(7));
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
  });
  EXPECT_FALSE(queue.push(8));  // was blocked on a full queue, then closed
  closer.join();
  EXPECT_EQ(queue.pop(), std::optional<int>(7));  // close-then-drain
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ProduceConsumeTest, RunsAllItemsThroughBothStages) {
  std::vector<int> consumed;
  produce_consume<int>(
      4,
      [](auto&& push) {
        for (int i = 0; i < 256; ++i) {
          if (!push(i)) return;
        }
      },
      [&consumed](int item) { consumed.push_back(item); });
  ASSERT_EQ(consumed.size(), 256u);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
}

TEST(ProduceConsumeTest, ProducerExceptionPropagates) {
  int consumed = 0;
  EXPECT_THROW(produce_consume<int>(
                   2,
                   [](auto&& push) {
                     push(1);
                     throw std::runtime_error("producer died");
                   },
                   [&consumed](int) { ++consumed; }),
               std::runtime_error);
  EXPECT_EQ(consumed, 1);  // queued items still drain before the rethrow
}

TEST(ProduceConsumeTest, ConsumerExceptionUnblocksProducer) {
  std::atomic<bool> producer_finished{false};
  EXPECT_THROW(produce_consume<int>(
                   1,
                   [&](auto&& push) {
                     for (int i = 0; i < 1000; ++i) {
                       if (!push(i)) break;  // queue closed by the failure
                     }
                     producer_finished = true;
                   },
                   [](int item) {
                     if (item == 3) throw std::logic_error("consumer died");
                   }),
               std::logic_error);
  EXPECT_TRUE(producer_finished.load());
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

TEST(ClusterTest, InMemoryNodesHaveIndependentDisks) {
  ClusterConfig config;
  config.node_count = 3;
  config.in_memory = true;
  Cluster cluster(config);
  ASSERT_EQ(cluster.size(), 3u);

  const std::byte data[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                             std::byte{4}};
  cluster.disk(0).write(0, data);
  EXPECT_EQ(cluster.disk(0).size(), 4u);
  EXPECT_EQ(cluster.disk(1).size(), 0u);
}

TEST(ClusterTest, FileBackedCreatesPerNodeDirectories) {
  util::TempDir dir;
  ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = dir.path();
  Cluster cluster(config);
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "node0" / "bricks.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "node1" / "bricks.dat"));
}

TEST(ClusterTest, RunExecutesEveryNodeOnce) {
  ClusterConfig config;
  config.node_count = 4;
  config.in_memory = true;
  Cluster cluster(config);
  std::mutex mutex;
  std::multiset<std::size_t> visits;
  cluster.run([&](std::size_t node) {
    std::lock_guard lock(mutex);
    visits.insert(node);
  });
  EXPECT_EQ(visits.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(visits.count(i), 1u);
}

TEST(ClusterTest, RejectsBadConfig) {
  ClusterConfig empty;
  empty.node_count = 0;
  empty.in_memory = true;
  EXPECT_THROW(Cluster{empty}, std::invalid_argument);

  ClusterConfig no_dir;
  no_dir.node_count = 1;
  EXPECT_THROW(Cluster{no_dir}, std::invalid_argument);
}

TEST(ClusterTest, CostHelpersUseConfiguredModels) {
  ClusterConfig config;
  config.node_count = 1;
  config.in_memory = true;
  config.disk.bandwidth_bytes_per_s = 100.0;
  config.disk.block_size = 10;
  config.disk.seek_seconds = 0.0;
  Cluster cluster(config);
  io::IoStats stats;
  stats.blocks_read = 5;  // 50 bytes at 100 B/s
  EXPECT_DOUBLE_EQ(cluster.disk_seconds(stats), 0.5);
  EXPECT_GT(cluster.network_seconds(1, 1'000'000), 0.0);
}

}  // namespace
}  // namespace oociso::parallel
