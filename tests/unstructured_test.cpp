#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "io/serial.h"
#include "unstructured/cluster_source.h"
#include "unstructured/marching_tets.h"
#include "unstructured/pipeline.h"
#include "unstructured/tet_mesh.h"

namespace oociso::unstructured {
namespace {

using core::Vec3;

// ---------------------------------------------------------------------------
// TetMesh + generator
// ---------------------------------------------------------------------------

TEST(TetMeshTest, GeneratorTilesUnitCube) {
  // 5 tets per cell must tile the cube exactly: total volume == 1.
  for (const float jitter : {0.0f, 0.35f}) {
    TetGridConfig config;
    config.cells = 6;
    config.jitter = jitter;
    const TetMesh mesh = make_tet_mesh(config);
    EXPECT_EQ(mesh.tet_count(), 6u * 6u * 6u * 5u);
    EXPECT_NEAR(mesh.total_volume(), 1.0, 1e-4) << "jitter " << jitter;
  }
}

TEST(TetMeshTest, JitteredTetsStayNonDegenerate) {
  TetGridConfig config;
  config.cells = 8;
  config.jitter = 0.35f;
  const TetMesh mesh = make_tet_mesh(config);
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    EXPECT_GT(std::abs(mesh.tet_volume(t)), 1e-9) << "tet " << t;
  }
}

TEST(TetMeshTest, Deterministic) {
  TetGridConfig config;
  config.cells = 5;
  const TetMesh a = make_tet_mesh(config, TetField::kMixing);
  const TetMesh b = make_tet_mesh(config, TetField::kMixing);
  ASSERT_EQ(a.vertices().size(), b.vertices().size());
  for (std::size_t i = 0; i < a.vertices().size(); ++i) {
    EXPECT_EQ(a.vertices()[i].position, b.vertices()[i].position);
    EXPECT_EQ(a.vertices()[i].value, b.vertices()[i].value);
  }
}

TEST(TetMeshTest, IntervalAndRange) {
  const TetMesh mesh = make_tet_mesh({.cells = 4, .seed = 1, .jitter = 0.2f});
  const auto range = mesh.value_range();
  for (std::size_t t = 0; t < mesh.tet_count(); ++t) {
    const auto interval = mesh.tet_interval(t);
    EXPECT_LE(interval.vmin, interval.vmax);
    EXPECT_GE(interval.vmin, range.vmin);
    EXPECT_LE(interval.vmax, range.vmax);
  }
}

TEST(TetMeshTest, RejectsBadIndices) {
  std::vector<TetVertex> vertices(3);
  EXPECT_THROW(TetMesh(vertices, {{0, 1, 2, 3}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Marching tetrahedra
// ---------------------------------------------------------------------------

const std::array<Vec3, 4> kRefTet = {Vec3{0, 0, 0}, Vec3{1, 0, 0},
                                     Vec3{0, 1, 0}, Vec3{0, 0, 1}};

TEST(MarchingTets, TrivialCasesProduceNothing) {
  extract::TriangleSoup soup;
  EXPECT_EQ(triangulate_tet(kRefTet, {0, 0, 0, 0}, 10.0f, soup), 0u);
  EXPECT_EQ(triangulate_tet(kRefTet, {20, 20, 20, 20}, 10.0f, soup), 0u);
  EXPECT_TRUE(soup.empty());
}

TEST(MarchingTets, SingleCornerCases) {
  // Each lone corner below the isovalue yields exactly one triangle.
  for (std::size_t lone = 0; lone < 4; ++lone) {
    std::array<float, 4> values{};
    values.fill(100.0f);
    values[lone] = 0.0f;
    extract::TriangleSoup soup;
    EXPECT_EQ(triangulate_tet(kRefTet, values, 50.0f, soup), 1u);
    EXPECT_GT(soup.total_area(), 0.0);
  }
}

TEST(MarchingTets, ThreeCornerCasesMirrorSingle) {
  // Complementary configurations produce the same cut (same area).
  for (std::size_t lone = 0; lone < 4; ++lone) {
    std::array<float, 4> single{};
    single.fill(100.0f);
    single[lone] = 0.0f;
    std::array<float, 4> triple{};
    triple.fill(0.0f);
    triple[lone] = 100.0f;

    extract::TriangleSoup a;
    extract::TriangleSoup b;
    EXPECT_EQ(triangulate_tet(kRefTet, single, 50.0f, a), 1u);
    EXPECT_EQ(triangulate_tet(kRefTet, triple, 50.0f, b), 1u);
    EXPECT_NEAR(a.total_area(), b.total_area(), 1e-6);
  }
}

TEST(MarchingTets, TwoTwoCaseGivesPlanarQuad) {
  // Values split by z: the cut of the reference tet at z = 0.5.
  const std::array<float, 4> values = {0.0f, 0.0f, 0.0f, 100.0f};
  // inside = {0,1,2} (below 50)... that's a 3-1 case; craft a true 2-2:
  const std::array<float, 4> two_two = {0.0f, 0.0f, 100.0f, 100.0f};
  extract::TriangleSoup soup;
  EXPECT_EQ(triangulate_tet(kRefTet, two_two, 50.0f, soup), 2u);
  // All four quad vertices sit at the midpoints of the crossed edges; the
  // quad must be planar here (area of the two triangles > 0).
  EXPECT_GT(soup.total_area(), 0.0);

  extract::TriangleSoup single;
  EXPECT_EQ(triangulate_tet(kRefTet, values, 50.0f, single), 1u);
}

TEST(MarchingTets, SphereAreaMatchesAnalytic) {
  // The kSphere field's isosurface is a sphere; compare extracted area with
  // the analytic value (tolerance covers faceting + jitter).
  TetGridConfig config;
  config.cells = 24;
  config.jitter = 0.3f;
  const TetMesh mesh = make_tet_mesh(config, TetField::kSphere);
  extract::TriangleSoup soup;
  const auto stats = extract_tet_mesh(mesh, 128.0f, soup);
  EXPECT_GT(stats.triangles, 500u);
  EXPECT_EQ(stats.triangles, soup.size());

  const double radius = (1.0 - 128.0 / 255.0) * std::sqrt(3.0) / 2.0;
  const double analytic = 4.0 * std::numbers::pi * radius * radius;
  EXPECT_NEAR(soup.total_area(), analytic, analytic * 0.05);
}

TEST(MarchingTets, WatertightAcrossSharedFaces) {
  // Every interior edge of the extracted surface must be shared by exactly
  // two triangles (MT has no ambiguous cases). Quantized vertex keys make
  // exact matching robust.
  const TetMesh mesh =
      make_tet_mesh({.cells = 6, .seed = 3, .jitter = 0.3f}, TetField::kSphere);
  extract::TriangleSoup soup;
  extract_tet_mesh(mesh, 128.0f, soup);
  ASSERT_GT(soup.size(), 0u);

  auto key = [](const Vec3& v) {
    auto q = [](float x) { return static_cast<std::int64_t>(std::llround(x * 1e6)); };
    return std::tuple(q(v.x), q(v.y), q(v.z));
  };
  std::map<std::tuple<std::tuple<std::int64_t, std::int64_t, std::int64_t>,
                      std::tuple<std::int64_t, std::int64_t, std::int64_t>>,
           int>
      edge_use;
  for (const auto& tri : soup.triangles()) {
    if (tri.area() < 1e-12f) continue;  // cut passed exactly through a vertex
    const std::array<Vec3, 3> v{tri.a, tri.b, tri.c};
    for (int e = 0; e < 3; ++e) {
      auto k1 = key(v[static_cast<std::size_t>(e)]);
      auto k2 = key(v[static_cast<std::size_t>((e + 1) % 3)]);
      if (k2 < k1) std::swap(k1, k2);
      if (k1 == k2) continue;  // degenerate edge from an exactly-cut corner
      ++edge_use[{k1, k2}];
    }
  }
  std::size_t boundary = 0;
  for (const auto& [edge, uses] : edge_use) {
    if (uses == 1) ++boundary;  // surface may exit through the cube boundary
    else EXPECT_EQ(uses, 2);
  }
  // The sphere is interior: only edges of triangles adjacent to exact
  // vertex cuts may be unmatched, a vanishing fraction.
  EXPECT_LT(boundary, edge_use.size() / 50 + 8);
}

// ---------------------------------------------------------------------------
// Clustering
// ---------------------------------------------------------------------------

TEST(TetCluster, MortonCodesOrderSpatially) {
  EXPECT_EQ(morton_code({0, 0, 0}), 0u);
  EXPECT_LT(morton_code({0.1f, 0.1f, 0.1f}), morton_code({0.9f, 0.9f, 0.9f}));
}

TEST(TetCluster, CoversEveryTetExactlyOnce) {
  const TetMesh mesh = make_tet_mesh({.cells = 5, .seed = 9, .jitter = 0.3f});
  const TetClusterSource source(mesh, 11);
  std::set<std::uint32_t> seen;
  for (std::uint32_t c = 0; c < source.total_clusters(); ++c) {
    for (const std::uint32_t tet : source.cluster_tets(c)) {
      EXPECT_TRUE(seen.insert(tet).second) << "tet " << tet << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), mesh.tet_count());
}

TEST(TetCluster, RecordRoundTrip) {
  const TetMesh mesh = make_tet_mesh({.cells = 4, .seed = 2, .jitter = 0.25f},
                                     TetField::kGyroid);
  const TetClusterSource source(mesh, 7);
  ASSERT_GT(source.cluster_count(), 0u);
  const auto infos = source.scan();

  std::vector<std::byte> record;
  source.encode(infos.front().id, record);
  EXPECT_EQ(record.size(), cluster_record_size(7));

  const auto tets = decode_cluster(record, 7);
  const auto expected = source.cluster_tets(infos.front().id);
  ASSERT_EQ(tets.size(), expected.size());
  for (std::size_t i = 0; i < tets.size(); ++i) {
    const Tetrahedron& reference = mesh.tets()[expected[i]];
    for (std::size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(tets[i].corners[v], mesh.vertex(reference[v]).position);
      EXPECT_EQ(tets[i].values[v], mesh.vertex(reference[v]).value);
    }
  }
}

TEST(TetCluster, PaddingNeverEmitsGeometry) {
  // A final partial cluster is padded with NaN tets; decoding drops them.
  const TetMesh mesh = make_tet_mesh({.cells = 3, .seed = 5, .jitter = 0.2f});
  const std::uint32_t arity = 13;  // 135 tets -> last cluster partial
  ASSERT_NE(mesh.tet_count() % arity, 0u);
  const TetClusterSource source(mesh, arity);
  const auto infos = source.scan();
  const std::uint32_t last_id = source.total_clusters() - 1;
  std::vector<std::byte> record;
  source.encode(last_id, record);
  const auto tets = decode_cluster(record, arity);
  EXPECT_EQ(tets.size(), mesh.tet_count() % arity);
}

TEST(TetCluster, IntervalsMatchBruteForce) {
  const TetMesh mesh = make_tet_mesh({.cells = 5, .seed = 7, .jitter = 0.3f},
                                     TetField::kMixing);
  const TetClusterSource source(mesh, 11);
  for (const auto& info : source.scan()) {
    core::ValueKey lo = 1e30f;
    core::ValueKey hi = -1e30f;
    for (const std::uint32_t tet : source.cluster_tets(info.id)) {
      const auto interval = mesh.tet_interval(tet);
      lo = std::min(lo, interval.vmin);
      hi = std::max(hi, interval.vmax);
    }
    EXPECT_EQ(info.interval, (core::ValueInterval{lo, hi}));
  }
}

TEST(TetCluster, MixingFieldCullsHomogeneousClusters) {
  const TetMesh mesh = make_tet_mesh({.cells = 10, .seed = 4, .jitter = 0.3f},
                                     TetField::kMixing);
  const TetClusterSource source(mesh, 11);
  EXPECT_LT(source.cluster_count(), source.total_clusters());
}

// ---------------------------------------------------------------------------
// Out-of-core unstructured pipeline
// ---------------------------------------------------------------------------

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

class TetPipeline : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TetPipeline, MatchesInCoreReference) {
  const std::size_t nodes = GetParam();
  const TetMesh mesh = make_tet_mesh({.cells = 10, .seed = 6, .jitter = 0.3f},
                                     TetField::kMixing);
  auto cluster = make_cluster(nodes);
  const TetPreprocessResult prep = preprocess_tets(mesh, cluster);

  for (const float isovalue : {60.0f, 124.0f, 200.0f}) {
    extract::TriangleSoup reference;
    extract_tet_mesh(mesh, isovalue, reference);

    TetQueryOptions options;
    options.keep_triangles = true;
    const TetQueryReport report =
        query_tets(cluster, prep, isovalue, options);
    EXPECT_EQ(report.total_triangles(), reference.size())
        << "nodes=" << nodes << " iso=" << isovalue;
    EXPECT_NEAR(report.triangles_out->total_area(), reference.total_area(),
                reference.total_area() * 1e-5 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeSweep, TetPipeline, ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(TetPipelineBalance, ClustersSpreadEvenly) {
  const TetMesh mesh = make_tet_mesh({.cells = 12, .seed = 8, .jitter = 0.3f},
                                     TetField::kMixing);
  auto cluster = make_cluster(4);
  const TetPreprocessResult prep = preprocess_tets(mesh, cluster);
  const TetQueryReport report = query_tets(cluster, prep, 124.0f);
  ASSERT_GT(report.total_active_clusters(), 50u);

  std::uint64_t lo = ~0ull;
  std::uint64_t hi = 0;
  for (const auto& node : report.nodes) {
    lo = std::min(lo, node.active_clusters);
    hi = std::max(hi, node.active_clusters);
  }
  EXPECT_LE(hi - lo, 64u);  // within bricks-on-path of even
  EXPECT_LT(static_cast<double>(hi - lo) /
                static_cast<double>(report.total_active_clusters() / 4),
            0.15);
}

TEST(TetPipelineRender, ProducesCoveredImage) {
  const TetMesh mesh = make_tet_mesh({.cells = 8, .seed = 2, .jitter = 0.25f},
                                     TetField::kSphere);
  auto cluster = make_cluster(2);
  const TetPreprocessResult prep = preprocess_tets(mesh, cluster);
  TetQueryOptions options;
  options.render = true;
  options.keep_image = true;
  options.image_size = 128;
  const TetQueryReport report = query_tets(cluster, prep, 128.0f, options);
  ASSERT_TRUE(report.image.has_value());
  EXPECT_GT(report.image->covered_pixels(), 100u);
}

TEST(TetPipelineErrors, MismatchedClusterRejected) {
  const TetMesh mesh = make_tet_mesh({.cells = 4, .seed = 1, .jitter = 0.2f});
  auto build_cluster = make_cluster(2);
  const TetPreprocessResult prep = preprocess_tets(mesh, build_cluster);
  auto other = make_cluster(3);
  EXPECT_THROW(query_tets(other, prep, 100.0f), std::invalid_argument);
}

}  // namespace
}  // namespace oociso::unstructured
