// Kernel-level properties beyond bit-identity of the soups:
//   * the full MarchingCubesStats — vertex-cache hits included — is
//     identical whichever classify ISA ran, on real RM data where the
//     cache actually hits,
//   * the engine's per-query report (counters and canonical mesh CRC) is
//     ISA-independent,
//   * the per-node TriangleSoup reserve derived from
//     QueryPlan::total_records() is never exceeded on the golden dataset
//     (the estimate absorbs every regrowth of the append loop),
//   * a server handling eight concurrent clients that each request a
//     different --kernel stays bit-identical to the serial baseline (the
//     TSan mixed-ISA workload).
// Labels: kernel + property.

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "data/rm_generator.h"
#include "extract/kernel.h"
#include "extract/marching_cubes.h"
#include "kernel_test_util.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "pipeline/query_engine.h"
#include "serve/query_server.h"

namespace oociso {
namespace {

using extract::KernelIsa;
using extract::KernelOptions;
using extract::testutil::bit_identical;
using extract::testutil::expect_stats_equal;

data::RmConfig golden_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  config.seed = 777;
  return config;
}

TEST(KernelProperty, FullStatsIdenticalAcrossIsasOnRealData) {
  const core::VolumeU8 volume =
      data::generate_rm_timestep(golden_rm(), 170);
  for (const float isovalue : {96.0f, 128.0f, 190.0f}) {
    extract::TriangleSoup scalar_soup;
    const extract::MarchingCubesStats scalar_stats = extract::extract_volume(
        volume, isovalue, scalar_soup, KernelOptions{KernelIsa::kScalar});
    // The property is vacuous unless the shared-edge cache actually fires.
    ASSERT_GT(scalar_stats.vertex_cache_hits, 0u);
    ASSERT_GT(scalar_stats.active_cells, 0u);
    for (const KernelIsa isa : extract::kernel::dispatchable_isas()) {
      if (isa == KernelIsa::kScalar) continue;
      extract::TriangleSoup simd_soup;
      const extract::MarchingCubesStats simd_stats =
          extract::extract_volume(volume, isovalue, simd_soup,
                                  KernelOptions{isa});
      expect_stats_equal(simd_stats, scalar_stats);
      EXPECT_TRUE(bit_identical(simd_soup, scalar_soup))
          << extract::kernel::isa_name(isa) << " iso " << isovalue;
    }
  }
}

/// One engine query at a pinned kernel, keeping triangles and the mesh CRC.
pipeline::QueryReport engine_report(parallel::Cluster& cluster,
                                    const pipeline::PreprocessResult& prep,
                                    float isovalue, KernelIsa isa) {
  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  options.compute_mesh_crc = true;
  options.kernel.isa = isa;
  return engine.run(isovalue, options);
}

TEST(KernelProperty, EngineReportIsIsaIndependent) {
  const core::VolumeU8 volume =
      data::generate_rm_timestep(golden_rm(), 170);
  parallel::ClusterConfig config;
  config.node_count = 3;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  for (const float isovalue : {110.0f, 150.0f}) {
    const pipeline::QueryReport scalar =
        engine_report(cluster, prep, isovalue, KernelIsa::kScalar);
    ASSERT_TRUE(scalar.mesh_crc.has_value());
    EXPECT_EQ(scalar.kernel_isa, KernelIsa::kScalar);
    ASSERT_GT(scalar.total_cells_classified(), 0u);
    // cells_classified counts every cell the bitmask pass graded; active
    // cells are the mixed-sign subset that reached triangulation.
    EXPECT_LE(scalar.total_active_cells(), scalar.total_cells_classified());

    for (const KernelIsa isa : extract::kernel::dispatchable_isas()) {
      if (isa == KernelIsa::kScalar) continue;
      const pipeline::QueryReport simd =
          engine_report(cluster, prep, isovalue, isa);
      EXPECT_EQ(simd.kernel_isa, isa);
      EXPECT_EQ(simd.mesh_crc, scalar.mesh_crc)
          << extract::kernel::isa_name(isa);
      EXPECT_EQ(simd.total_triangles(), scalar.total_triangles());
      EXPECT_EQ(simd.total_cells_classified(),
                scalar.total_cells_classified());
      EXPECT_EQ(simd.total_active_cells(), scalar.total_active_cells());
      EXPECT_EQ(simd.total_vertex_cache_hits(),
                scalar.total_vertex_cache_hits());
      EXPECT_TRUE(bit_identical(*simd.triangles_out, *scalar.triangles_out));
    }
  }
}

TEST(KernelProperty, SoupReserveFromPlanIsNeverExceeded) {
  // The engine pre-sizes each node's soup at
  //   plan.total_records() * 6 * cells_per_side^2
  // (~2 triangles per crossed cell, up to ~3 crossed layers per active
  // metacell). On the golden dataset the estimate must hold across the
  // full paper sweep — if a kernel change ever pushed real meshes past
  // it, every query would pay the regrowths the reserve exists to absorb.
  const core::VolumeU8 volume =
      data::generate_rm_timestep(golden_rm(), 170);
  parallel::ClusterConfig config;
  config.node_count = 3;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  const auto side =
      static_cast<std::uint64_t>(prep.geometry.cells_per_side());

  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.render = false;
  std::uint64_t checked = 0;
  for (float isovalue = 10.0f; isovalue <= 210.0f; isovalue += 20.0f) {
    const pipeline::QueryReport report = engine.run(isovalue, options);
    for (std::size_t node = 0; node < prep.trees.size(); ++node) {
      const std::uint64_t reserve =
          prep.trees[node].plan(isovalue).total_records() * 6 * side * side;
      EXPECT_LE(report.nodes[node].triangles, reserve)
          << "node " << node << " iso " << isovalue;
      checked += report.nodes[node].triangles;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(KernelProperty, ServeMixedKernelsMatchesSerialBaseline) {
  // Eight concurrent clients, each pinning a different --kernel for its
  // own request. The kernels differ only in classify throughput, so the
  // mix must be bit-identical to serial scalar execution; under TSan this
  // is the mixed-ISA data-race probe for the dispatch cache and the
  // shared pools.
  data::RmConfig rm;
  rm.dims = {48, 48, 44};
  const auto volume = data::generate_rm_timestep(rm, 200);
  parallel::ClusterConfig config;
  config.node_count = 4;
  config.in_memory = true;
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  const std::vector<core::ValueKey> isovalues = {
      96.0f, 110.0f, 120.0f, 128.0f, 135.0f, 150.0f, 170.0f, 190.0f};

  // Serial uncached reference at forced scalar.
  std::vector<extract::TriangleSoup> reference;
  {
    pipeline::QueryEngine engine(cluster, prep);
    pipeline::QueryOptions options;
    options.render = false;
    options.keep_triangles = true;
    options.kernel.isa = KernelIsa::kScalar;
    for (const core::ValueKey isovalue : isovalues) {
      reference.push_back(
          std::move(*engine.run(isovalue, options).triangles_out));
    }
  }

  // Rotate through auto plus every dispatchable ISA across the requests.
  std::vector<KernelIsa> rotation = {KernelIsa::kAuto};
  for (const KernelIsa isa : extract::kernel::dispatchable_isas()) {
    rotation.push_back(isa);
  }

  serve::ServeOptions options;
  options.max_concurrent_queries = 8;
  options.cache_capacity_blocks = 512;
  options.query.render = false;
  options.query.keep_triangles = true;
  serve::QueryServer server(cluster, prep, options);

  std::vector<std::future<pipeline::QueryReport>> pending;
  pending.reserve(isovalues.size());
  for (std::size_t i = 0; i < isovalues.size(); ++i) {
    const KernelOptions kernel{rotation[i % rotation.size()]};
    pending.push_back(std::async(std::launch::async, [&server, &isovalues, i,
                                                      kernel] {
      return server.query(isovalues[i], kernel);
    }));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const pipeline::QueryReport report = pending[i].get();
    const KernelIsa requested = rotation[i % rotation.size()];
    EXPECT_EQ(report.kernel_isa, extract::kernel::resolve(requested));
    ASSERT_TRUE(report.triangles_out.has_value());
    EXPECT_TRUE(bit_identical(*report.triangles_out, reference[i]))
        << "isovalue " << isovalues[i] << " kernel "
        << extract::kernel::isa_name(requested);
    EXPECT_FALSE(report.degraded);
  }
}

}  // namespace
}  // namespace oociso
