// The incremental marching-cubes kernel (rolling sample planes + shared-
// edge vertex caches + bitmask classification) must be a pure
// optimization: for every input it has to emit the exact triangle sequence
// of the per-cell reference kernel, bit for bit. These tests sweep all 256
// cube configurations and randomized volumes in every supported scalar
// kind — including x extents straddling the classify lane width, where the
// active-mask word count differs from the sample-row word count.
// kernel_fuzz_test extends the same contract across every dispatchable
// SIMD ISA; the shared helpers live in kernel_test_util.h.

#include <gtest/gtest.h>

#include <vector>

#include "core/volume.h"
#include "extract/marching_cubes.h"
#include "kernel_test_util.h"
#include "metacell/metacell.h"
#include "util/rng.h"

namespace oociso::extract {
namespace {

using testutil::bit_identical;
using testutil::expect_counter_stats_equal;
using testutil::kCorner;
using testutil::random_volume;

TEST(IncrementalKernel, MatchesPerCellOnAll256CubeCases) {
  // One unit cell; inside means value < isovalue, so a set bit gets a value
  // below 100 and a clear bit one above. Non-round values exercise real
  // interpolation on every crossing edge.
  for (unsigned cube = 0; cube < 256; ++cube) {
    core::Volume<float> volume({2, 2, 2});
    for (unsigned c = 0; c < 8; ++c) {
      const float value = (cube & (1u << c)) != 0 ? 37.5f : 181.25f;
      volume.at(kCorner[c][0], kCorner[c][1], kCorner[c][2]) = value;
    }

    TriangleSoup incremental;
    TriangleSoup percell;
    const ExtractionStats a = extract_volume(volume, 100.0f, incremental);
    const ExtractionStats b = extract_volume_percell(volume, 100.0f, percell);

    EXPECT_TRUE(bit_identical(incremental, percell)) << "cube case " << cube;
    expect_counter_stats_equal(a, b);
  }
}

template <typename T>
void check_random_volumes(float lo, float hi) {
  // The first three shapes exercise ordinary interior geometry; the last
  // three pin the classify bitmask's remainder handling — 63/64/65 samples
  // along x sit on either side of the 64-bit word boundary, and 65 samples
  // (64 cells) is the case where a cell row fills its last mask word
  // exactly while the sample rows spill into one more.
  const core::GridDims shapes[] = {{13, 11, 9}, {2, 2, 2},  {5, 2, 7},
                                   {63, 2, 3},  {64, 3, 2}, {65, 2, 2}};
  std::uint64_t seed = 1000;
  for (const core::GridDims& dims : shapes) {
    const core::Volume<T> volume = random_volume<T>(dims, seed++);
    std::uint64_t produced = 0;
    for (int step = 0; step <= 4; ++step) {
      const float isovalue =
          lo + (hi - lo) * static_cast<float>(step) / 4.0f;
      TriangleSoup incremental;
      TriangleSoup percell;
      const ExtractionStats a = extract_volume(volume, isovalue, incremental);
      const ExtractionStats b =
          extract_volume_percell(volume, isovalue, percell);
      EXPECT_TRUE(bit_identical(incremental, percell))
          << dims.nx << "x" << dims.ny << "x" << dims.nz << " iso "
          << isovalue;
      expect_counter_stats_equal(a, b);
      produced += a.triangles;
    }
    // The sweep has to exercise real geometry, not compare empty soups.
    EXPECT_GT(produced, 0u);
  }
}

TEST(IncrementalKernel, MatchesPerCellOnRandomU8Volumes) {
  check_random_volumes<std::uint8_t>(10.0f, 240.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnRandomU16Volumes) {
  check_random_volumes<std::uint16_t>(1000.0f, 64000.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnRandomFloatVolumes) {
  check_random_volumes<float>(10.0f, 245.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnMetacells) {
  // Metacell path: partial valid-cell extents (boundary metacells) and a
  // non-zero sample origin must translate identically in both kernels.
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 16; ++trial) {
    metacell::DecodedMetacell cell;
    cell.id = static_cast<std::uint32_t>(trial);
    cell.samples_per_side = 9;
    cell.sample_origin = {8 * (trial % 3), 8 * (trial % 2), 8 * (trial % 5)};
    cell.valid_cells = {1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8))};
    cell.samples.resize(9 * 9 * 9);
    for (float& sample : cell.samples) {
      sample = static_cast<float>(rng.bounded(256));
    }

    for (const float isovalue : {40.0f, 127.5f, 200.0f}) {
      TriangleSoup incremental;
      TriangleSoup percell;
      const ExtractionStats a = extract_metacell(cell, isovalue, incremental);
      const ExtractionStats b =
          extract_metacell_percell(cell, isovalue, percell);
      EXPECT_TRUE(bit_identical(incremental, percell))
          << "trial " << trial << " iso " << isovalue;
      expect_counter_stats_equal(a, b);
    }
  }
}

}  // namespace
}  // namespace oociso::extract
