// The incremental marching-cubes kernel (rolling sample planes + shared-
// edge vertex caches) must be a pure optimization: for every input it has
// to emit the exact triangle sequence of the per-cell reference kernel,
// bit for bit. These tests sweep all 256 cube configurations and randomized
// volumes in every supported scalar kind.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "core/volume.h"
#include "extract/marching_cubes.h"
#include "metacell/metacell.h"
#include "util/rng.h"

namespace oociso::extract {
namespace {

/// Byte-exact equality of two triangle sequences (same count, same order,
/// same float bits).
::testing::AssertionResult bit_identical(const TriangleSoup& a,
                                         const TriangleSoup& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "triangle counts differ: " << a.size() << " vs " << b.size();
  }
  if (a.size() > 0 &&
      std::memcmp(a.triangles().data(), b.triangles().data(),
                  a.size() * sizeof(Triangle)) != 0) {
    return ::testing::AssertionFailure() << "triangle bytes differ";
  }
  return ::testing::AssertionSuccess();
}

void expect_stats_equal(const ExtractionStats& a, const ExtractionStats& b) {
  EXPECT_EQ(a.cells_visited, b.cells_visited);
  EXPECT_EQ(a.active_cells, b.active_cells);
  EXPECT_EQ(a.triangles, b.triangles);
}

// Corner numbering of mc_tables.h: v0=(0,0,0) v1=(1,0,0) v2=(1,1,0)
// v3=(0,1,0) v4=(0,0,1) v5=(1,0,1) v6=(1,1,1) v7=(0,1,1).
constexpr std::array<std::array<std::int32_t, 3>, 8> kCorner = {{
    {0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
    {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}};

TEST(IncrementalKernel, MatchesPerCellOnAll256CubeCases) {
  // One unit cell; inside means value < isovalue, so a set bit gets a value
  // below 100 and a clear bit one above. Non-round values exercise real
  // interpolation on every crossing edge.
  for (unsigned cube = 0; cube < 256; ++cube) {
    core::Volume<float> volume({2, 2, 2});
    for (unsigned c = 0; c < 8; ++c) {
      const float value = (cube & (1u << c)) != 0 ? 37.5f : 181.25f;
      volume.at(kCorner[c][0], kCorner[c][1], kCorner[c][2]) = value;
    }

    TriangleSoup incremental;
    TriangleSoup percell;
    const ExtractionStats a = extract_volume(volume, 100.0f, incremental);
    const ExtractionStats b = extract_volume_percell(volume, 100.0f, percell);

    EXPECT_TRUE(bit_identical(incremental, percell)) << "cube case " << cube;
    expect_stats_equal(a, b);
  }
}

template <typename T>
core::Volume<T> random_volume(core::GridDims dims, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  core::Volume<T> volume(dims);
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      for (std::int32_t x = 0; x < dims.nx; ++x) {
        if constexpr (std::is_floating_point_v<T>) {
          volume.at(x, y, z) =
              static_cast<T>(rng.bounded(100000)) / T{391.0};
        } else {
          volume.at(x, y, z) = static_cast<T>(
              rng.bounded(std::uint32_t{1}
                          << (8 * static_cast<unsigned>(sizeof(T)))));
        }
      }
    }
  }
  return volume;
}

template <typename T>
void check_random_volumes(float lo, float hi) {
  const core::GridDims shapes[] = {{13, 11, 9}, {2, 2, 2}, {5, 2, 7}};
  std::uint64_t seed = 1000;
  for (const core::GridDims& dims : shapes) {
    const core::Volume<T> volume = random_volume<T>(dims, seed++);
    std::uint64_t produced = 0;
    for (int step = 0; step <= 4; ++step) {
      const float isovalue =
          lo + (hi - lo) * static_cast<float>(step) / 4.0f;
      TriangleSoup incremental;
      TriangleSoup percell;
      const ExtractionStats a = extract_volume(volume, isovalue, incremental);
      const ExtractionStats b =
          extract_volume_percell(volume, isovalue, percell);
      EXPECT_TRUE(bit_identical(incremental, percell))
          << dims.nx << "x" << dims.ny << "x" << dims.nz << " iso "
          << isovalue;
      expect_stats_equal(a, b);
      produced += a.triangles;
    }
    // The sweep has to exercise real geometry, not compare empty soups.
    EXPECT_GT(produced, 0u);
  }
}

TEST(IncrementalKernel, MatchesPerCellOnRandomU8Volumes) {
  check_random_volumes<std::uint8_t>(10.0f, 240.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnRandomU16Volumes) {
  check_random_volumes<std::uint16_t>(1000.0f, 64000.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnRandomFloatVolumes) {
  check_random_volumes<float>(10.0f, 245.0f);
}

TEST(IncrementalKernel, MatchesPerCellOnMetacells) {
  // Metacell path: partial valid-cell extents (boundary metacells) and a
  // non-zero sample origin must translate identically in both kernels.
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 16; ++trial) {
    metacell::DecodedMetacell cell;
    cell.id = static_cast<std::uint32_t>(trial);
    cell.samples_per_side = 9;
    cell.sample_origin = {8 * (trial % 3), 8 * (trial % 2), 8 * (trial % 5)};
    cell.valid_cells = {1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8))};
    cell.samples.resize(9 * 9 * 9);
    for (float& sample : cell.samples) {
      sample = static_cast<float>(rng.bounded(256));
    }

    for (const float isovalue : {40.0f, 127.5f, 200.0f}) {
      TriangleSoup incremental;
      TriangleSoup percell;
      const ExtractionStats a = extract_metacell(cell, isovalue, incremental);
      const ExtractionStats b =
          extract_metacell_percell(cell, isovalue, percell);
      EXPECT_TRUE(bit_identical(incremental, percell))
          << "trial " << trial << " iso " << isovalue;
      expect_stats_equal(a, b);
    }
  }
}

}  // namespace
}  // namespace oociso::extract
