// The async submission/completion queue (io::AsyncBlockDevice) and the
// RetrievalStream dispatch loop built on it (RetrievalOptions::queue_depth).
//
// The contract these tests pin:
//   * depth 1 is the synchronous path in disguise — bit-identical records,
//     QueryStats, and device IoStats, with every submission dry;
//   * deeper queues keep the device traffic identical on the scheduler's
//     offset-monotone plans while strictly reducing the modeled host
//     turnaround (the property the queue-depth CI gate asserts);
//   * scrambled submissions are serviced out of submission order by the
//     elevator, deterministically;
//   * faults retry through the queue with the same taxonomy and accounting
//     as the synchronous retry loop;
//   * pooled streams keep single-flight shared caching intact, including
//     across concurrent threads (the TSan-facing case).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/retrieval_stream.h"
#include "io/async_block_device.h"
#include "io/fault_injection.h"
#include "io/memory_block_device.h"
#include "io/serial.h"
#include "io/shared_buffer_pool.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

using metacell::MetacellInfo;

/// Controlled source: tiny u8 records whose vmin/vmax match a prescribed
/// interval exactly (same harness as retrieval_stream_test).
class FakeSource final : public metacell::MetacellSource {
 public:
  explicit FakeSource(std::vector<MetacellInfo> infos)
      : infos_sorted_(std::move(infos)), geometry_({1026, 3, 3}, 2) {
    std::sort(infos_sorted_.begin(), infos_sorted_.end(),
              [](const MetacellInfo& a, const MetacellInfo& b) {
                return a.id < b.id;
              });
    for (const auto& info : infos_sorted_) by_id_[info.id] = info.interval;
  }

  [[nodiscard]] const metacell::MetacellGeometry& geometry() const override {
    return geometry_;
  }
  [[nodiscard]] core::ScalarKind kind() const override {
    return core::ScalarKind::kU8;
  }
  [[nodiscard]] std::vector<MetacellInfo> scan() const override {
    return infos_sorted_;
  }
  void encode(std::uint32_t id, std::vector<std::byte>& out) const override {
    const core::ValueInterval interval = by_id_.at(id);
    io::ByteWriter writer(out);
    writer.put(id);
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    writer.put(static_cast<std::uint8_t>(interval.vmin));
    for (int i = 0; i < 7; ++i) {
      writer.put(static_cast<std::uint8_t>(interval.vmax));
    }
  }

 private:
  std::vector<MetacellInfo> infos_sorted_;
  std::map<std::uint32_t, core::ValueInterval> by_id_;
  metacell::MetacellGeometry geometry_;
};

std::vector<MetacellInfo> random_intervals(std::size_t count,
                                           std::uint32_t alphabet,
                                           std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<MetacellInfo> infos;
  infos.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto a = static_cast<core::ValueKey>(rng.bounded(alphabet));
    auto b = static_cast<core::ValueKey>(rng.bounded(alphabet));
    if (a > b) std::swap(a, b);
    if (a == b) b += 1;
    infos.push_back({static_cast<std::uint32_t>(i), {a, b}});
  }
  return infos;
}

struct Built {
  std::unique_ptr<io::MemoryBlockDevice> device;
  CompactIntervalTree tree;
};

Built build_one(const std::vector<MetacellInfo>& infos) {
  Built built;
  built.device = std::make_unique<io::MemoryBlockDevice>(512);
  const FakeSource source(infos);
  io::BlockDevice* pointer = built.device.get();
  auto result = CompactTreeBuilder::build(infos, source, {&pointer, 1});
  built.tree = std::move(result.trees[0]);
  return built;
}

std::uint32_t record_id(std::span<const std::byte> record) {
  io::ByteReader reader(record);
  return reader.get<std::uint32_t>();
}

std::vector<std::uint32_t> drain_ids(RetrievalStream& stream) {
  std::vector<std::uint32_t> ids;
  while (std::optional<RecordBatch> batch = stream.next()) {
    for (std::size_t r = 0; r < batch->record_count; ++r) {
      ids.push_back(record_id(batch->record(r)));
    }
  }
  return ids;
}

void expect_same_io(const io::IoStats& a, const io::IoStats& b,
                    const std::string& context) {
  EXPECT_EQ(a.read_ops, b.read_ops) << context;
  EXPECT_EQ(a.blocks_read, b.blocks_read) << context;
  EXPECT_EQ(a.bytes_read, b.bytes_read) << context;
  EXPECT_EQ(a.seeks, b.seeks) << context;
  EXPECT_EQ(a.skip_blocks, b.skip_blocks) << context;
}

/// Options with a tight coalescing gap: contiguous runs still merge but no
/// gap bytes are bridged, so the schedule has many items (the interesting
/// regime for a submission queue) while staying offset-monotone.
RetrievalOptions tight_options(std::size_t queue_depth) {
  RetrievalOptions options;
  options.coalesce_gap_bytes = 0;
  options.queue_depth = queue_depth;
  return options;
}

// ---------------------------------------------------------------------------
// AsyncBlockDevice direct: service discipline and turnaround accounting
// ---------------------------------------------------------------------------

void fill_device(io::MemoryBlockDevice& device, std::uint64_t bytes) {
  std::vector<std::byte> payload(bytes);
  for (std::uint64_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<std::byte>(i * 31 + 7);
  }
  device.write(0, payload);
  device.reset_stats();
}

TEST(AsyncBlockDevice, DepthOneMatchesSynchronousAccountingExactly) {
  // The same read sequence — forward runs, a readahead-window skip, a
  // backward seek — executed synchronously and through a depth-1 queue.
  const std::vector<std::pair<std::uint64_t, std::size_t>> reads = {
      {0, 512}, {512, 1024}, {4096, 512}, {64 * 512, 512}, {2048, 512}};

  io::MemoryBlockDevice sync_device(512);
  fill_device(sync_device, 64 * 1024);
  std::vector<std::byte> sync_bytes;
  for (const auto& [offset, size] : reads) {
    std::vector<std::byte> buffer(size);
    sync_device.read(offset, buffer);
    sync_bytes.insert(sync_bytes.end(), buffer.begin(), buffer.end());
  }

  io::MemoryBlockDevice async_device(512);
  fill_device(async_device, 64 * 1024);
  io::AsyncIoConfig config;
  config.queue_depth = 1;
  io::AsyncBlockDevice queue(async_device, config);
  std::vector<std::byte> async_bytes;
  for (const auto& [offset, size] : reads) {
    std::vector<std::byte> buffer(size);
    (void)queue.submit(offset, buffer);
    const io::AsyncCompletion completion = queue.wait_any();
    ASSERT_FALSE(completion.error) << "offset " << offset;
    EXPECT_EQ(completion.offset, offset);
    EXPECT_EQ(completion.bytes, size);
    async_bytes.insert(async_bytes.end(), buffer.begin(), buffer.end());
  }

  EXPECT_EQ(async_bytes, sync_bytes);
  expect_same_io(async_device.stats(), sync_device.stats(), "depth-1 queue");
  // Depth 1 can never prime the queue: every submission is dry.
  EXPECT_EQ(queue.stats().submissions, reads.size());
  EXPECT_EQ(queue.stats().dry_submissions, reads.size());
  EXPECT_EQ(queue.stats().reordered_services, 0u);
  EXPECT_DOUBLE_EQ(queue.stats().turnaround_modeled_seconds,
                   static_cast<double>(reads.size()) *
                       config.submit_overhead_seconds);
}

TEST(AsyncBlockDevice, ElevatorServicesScrambledSubmissionsDeterministically) {
  // Eight reads submitted in scrambled offset order at depth 8: the
  // elevator must service them in ascending offset order (one clean sweep
  // from an idle head), out of submission order, and identically on a
  // re-run.
  const std::vector<std::uint64_t> scrambled = {
      40 * 512, 2 * 512, 90 * 512, 10 * 512,
      70 * 512, 4 * 512, 120 * 512, 55 * 512};
  std::vector<std::uint64_t> ascending = scrambled;
  std::sort(ascending.begin(), ascending.end());

  const auto run_once = [&] {
    io::MemoryBlockDevice device(512);
    fill_device(device, 256 * 512);
    io::AsyncIoConfig config;
    config.queue_depth = scrambled.size();
    io::AsyncBlockDevice queue(device, config);
    std::vector<std::vector<std::byte>> buffers(scrambled.size());
    for (std::size_t i = 0; i < scrambled.size(); ++i) {
      buffers[i].resize(512);
      (void)queue.submit(scrambled[i], buffers[i]);
    }
    std::vector<std::uint64_t> service_order;
    while (queue.in_flight() > 0) {
      const io::AsyncCompletion completion = queue.wait_any();
      EXPECT_FALSE(completion.error);
      service_order.push_back(completion.offset);
    }
    EXPECT_GT(queue.stats().reordered_services, 0u);
    EXPECT_EQ(queue.stats().max_in_flight, scrambled.size());
    return service_order;
  };

  const std::vector<std::uint64_t> first = run_once();
  EXPECT_EQ(first, ascending);
  EXPECT_EQ(run_once(), first);  // deterministic, not timing-dependent
}

TEST(AsyncBlockDevice, OnlyIdleSubmissionsPayTurnaround) {
  io::MemoryBlockDevice device(512);
  fill_device(device, 64 * 512);
  io::AsyncIoConfig config;
  config.queue_depth = 4;
  io::AsyncBlockDevice queue(device, config);

  // Fill the queue once (only the first submission finds it idle), then
  // keep it primed: service one, submit one.
  std::vector<std::vector<std::byte>> buffers(12);
  std::size_t submitted = 0;
  for (; submitted < 4; ++submitted) {
    buffers[submitted].resize(512);
    (void)queue.submit(submitted * 512, buffers[submitted]);
  }
  double completion_turnaround = 0.0;
  while (queue.in_flight() > 0) {
    const io::AsyncCompletion completion = queue.wait_any();
    EXPECT_FALSE(completion.error);
    completion_turnaround += completion.turnaround_modeled_seconds;
    if (submitted < buffers.size()) {
      buffers[submitted].resize(512);
      (void)queue.submit(submitted * 512, buffers[submitted]);
      ++submitted;
    }
  }

  EXPECT_EQ(queue.stats().submissions, buffers.size());
  EXPECT_EQ(queue.stats().dry_submissions, 1u);
  EXPECT_DOUBLE_EQ(queue.stats().turnaround_modeled_seconds,
                   config.submit_overhead_seconds);
  // The charge surfaces on exactly the request whose submission was dry.
  EXPECT_DOUBLE_EQ(completion_turnaround,
                   queue.stats().turnaround_modeled_seconds);
}

TEST(AsyncBlockDevice, GuardsMisuse) {
  io::MemoryBlockDevice device(512);
  fill_device(device, 8 * 512);
  io::AsyncIoConfig zero_depth;
  zero_depth.queue_depth = 0;
  EXPECT_THROW(io::AsyncBlockDevice(device, zero_depth),
               std::invalid_argument);

  io::AsyncIoConfig config;
  config.queue_depth = 2;
  io::AsyncBlockDevice queue(device, config);
  EXPECT_THROW((void)queue.wait_any(), std::logic_error);
  std::vector<std::byte> a(512), b(512), c(512);
  (void)queue.submit(0, a);
  (void)queue.submit(512, b);
  EXPECT_THROW((void)queue.submit(1024, c), std::logic_error);  // full
  EXPECT_EQ(queue.in_flight(), 2u);
}

// ---------------------------------------------------------------------------
// RetrievalStream at queue_depth >= 1: equivalence with the sync path
// ---------------------------------------------------------------------------

TEST(AsyncStream, DepthOneIsBitIdenticalToSynchronousAcrossSweep) {
  const auto infos = random_intervals(3000, 200, 77);
  Built sync_built = build_one(infos);
  Built async_built = build_one(infos);

  for (std::uint32_t v = 5; v <= 200; v += 13) {
    const auto isovalue = static_cast<core::ValueKey>(v);
    const io::IoStats sync_before = sync_built.device->stats();
    const io::IoStats async_before = async_built.device->stats();

    RetrievalStream sync_stream = open_stream(sync_built.tree, isovalue,
                                              *sync_built.device,
                                              tight_options(0));
    RetrievalStream async_stream = open_stream(async_built.tree, isovalue,
                                               *async_built.device,
                                               tight_options(1));
    // Compare batch by batch, not just the concatenation: delivery
    // boundaries are part of the contract (the pipeline overlaps per batch).
    std::optional<RecordBatch> expected;
    while ((expected = sync_stream.next())) {
      std::optional<RecordBatch> actual = async_stream.next();
      ASSERT_TRUE(actual.has_value()) << "isovalue " << v;
      EXPECT_EQ(actual->data, expected->data) << "isovalue " << v;
      EXPECT_EQ(actual->record_count, expected->record_count);
      EXPECT_EQ(actual->records_fetched, expected->records_fetched);
      expect_same_io(actual->io, expected->io, "batch io");
    }
    EXPECT_FALSE(async_stream.next().has_value());

    EXPECT_EQ(async_stream.stats().active_metacells,
              sync_stream.stats().active_metacells);
    EXPECT_EQ(async_stream.stats().records_fetched,
              sync_stream.stats().records_fetched);
    EXPECT_EQ(async_stream.stats().bricks_scanned,
              sync_stream.stats().bricks_scanned);
    expect_same_io(async_built.device->stats().since(async_before),
                   sync_built.device->stats().since(sync_before),
                   "device traffic, isovalue " + std::to_string(v));

    // Depth 1 pays the full turnaround: one dry submission per read. (An
    // isovalue with an empty plan never constructs the dispatcher at all.)
    const io::AsyncIoStats* async_stats = async_stream.async_stats();
    if (async_stream.schedule().items.empty()) {
      EXPECT_EQ(async_stats, nullptr);
      continue;
    }
    ASSERT_NE(async_stats, nullptr);
    EXPECT_EQ(async_stats->dry_submissions, async_stats->submissions);
    // NEAR, not DOUBLE_EQ: the stream accumulates the charge one dry
    // submission at a time, the reference multiplies once.
    EXPECT_NEAR(async_stream.turnaround_modeled_seconds(),
                static_cast<double>(async_stats->dry_submissions) *
                    tight_options(1).submit_overhead_seconds,
                1e-9);
    EXPECT_EQ(sync_stream.async_stats(), nullptr);
    EXPECT_DOUBLE_EQ(sync_stream.turnaround_modeled_seconds(), 0.0);
  }
}

TEST(AsyncStream, DeeperQueuesKeepTrafficIdenticalAndReduceTurnaround) {
  const auto infos = random_intervals(4000, 180, 91);
  const auto isovalue = static_cast<core::ValueKey>(90);

  struct Run {
    std::vector<std::uint32_t> ids;
    io::IoStats device_io;
    QueryStats stats;
    double turnaround = 0.0;
    std::uint64_t submissions = 0;
  };
  const auto run_at_depth = [&](std::size_t depth) {
    Built built = build_one(infos);
    built.device->reset_stats();
    RetrievalStream stream =
        open_stream(built.tree, isovalue, *built.device,
                    tight_options(depth));
    Run run;
    run.ids = drain_ids(stream);
    run.device_io = built.device->stats();
    run.stats = stream.stats();
    run.turnaround = stream.turnaround_modeled_seconds();
    if (const io::AsyncIoStats* stats = stream.async_stats()) {
      run.submissions = stats->submissions;
    }
    return run;
  };

  const Run baseline = run_at_depth(0);
  ASSERT_FALSE(baseline.ids.empty());
  Run previous;
  for (const std::size_t depth : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{8}}) {
    const Run run = run_at_depth(depth);
    EXPECT_EQ(run.ids, baseline.ids) << "depth " << depth;
    expect_same_io(run.device_io, baseline.device_io,
                   "depth " + std::to_string(depth));
    EXPECT_EQ(run.stats.active_metacells, baseline.stats.active_metacells);
    EXPECT_EQ(run.stats.records_fetched, baseline.stats.records_fetched);
    EXPECT_EQ(run.stats.bricks_scanned, baseline.stats.bricks_scanned);
    if (depth > 1) {
      // Deeper queues can only remove dry submissions, never add any.
      EXPECT_LE(run.turnaround, previous.turnaround) << "depth " << depth;
    }
    previous = run;
  }

  // The designed win, the same property the CI bench gate asserts: with
  // enough reads in the schedule a depth-4 queue stays primed and pays
  // strictly less modeled turnaround than depth 1 (which pays per read).
  const Run depth1 = run_at_depth(1);
  const Run depth4 = run_at_depth(4);
  ASSERT_GT(depth1.submissions, 1u)
      << "schedule too small to exercise the queue";
  EXPECT_LT(depth4.turnaround, depth1.turnaround);
}

TEST(AsyncStream, LegacyPlanOrderSurvivesOutOfOrderService) {
  // coalesce=false executes the plan brick by brick in plan order, which
  // is not offset-monotone — at depth 8 the elevator genuinely services
  // out of submission order. Delivery must still be in plan order with
  // records identical to the synchronous legacy execution.
  const auto infos = random_intervals(2500, 150, 33);
  Built sync_built = build_one(infos);
  Built async_built = build_one(infos);

  RetrievalOptions sync_options;
  sync_options.coalesce = false;
  RetrievalOptions async_options;
  async_options.coalesce = false;
  async_options.queue_depth = 8;

  for (const float isovalue : {30.0f, 75.0f, 120.0f}) {
    RetrievalStream sync_stream = open_stream(sync_built.tree, isovalue,
                                              *sync_built.device,
                                              sync_options);
    RetrievalStream async_stream = open_stream(async_built.tree, isovalue,
                                               *async_built.device,
                                               async_options);
    EXPECT_EQ(drain_ids(async_stream), drain_ids(sync_stream))
        << "isovalue " << isovalue;
    EXPECT_EQ(async_stream.stats().active_metacells,
              sync_stream.stats().active_metacells);
    EXPECT_EQ(async_stream.stats().records_fetched,
              sync_stream.stats().records_fetched);
  }
}

// ---------------------------------------------------------------------------
// Fault handling through the queue
// ---------------------------------------------------------------------------

TEST(AsyncStream, AbsorbsTransientFaultWithSameAccountingAsSync) {
  const auto infos = random_intervals(800, 100, 11);
  Built clean = build_one(infos);
  RetrievalStream clean_stream =
      open_stream(clean.tree, 50.0f, *clean.device, tight_options(0));
  const std::vector<std::uint32_t> expected = drain_ids(clean_stream);
  ASSERT_FALSE(expected.empty());

  // Same fault schedule against the sync retry loop and the async queue at
  // depth 1: read ordinals coincide, so the taxonomy and the modeled
  // backoff must too.
  io::FaultConfig config;
  config.fail_reads = {0};
  config.corrupt_reads = {2};

  Built sync_built = build_one(infos);
  io::FaultInjectingBlockDevice sync_device(*sync_built.device, config);
  RetrievalStream sync_stream =
      open_stream(sync_built.tree, 50.0f, sync_device, tight_options(0));
  EXPECT_EQ(drain_ids(sync_stream), expected);

  Built async_built = build_one(infos);
  io::FaultInjectingBlockDevice async_device(*async_built.device, config);
  RetrievalStream async_stream =
      open_stream(async_built.tree, 50.0f, async_device, tight_options(1));
  EXPECT_EQ(drain_ids(async_stream), expected);

  EXPECT_EQ(async_stream.faults().transient_errors,
            sync_stream.faults().transient_errors);
  EXPECT_EQ(async_stream.faults().checksum_failures,
            sync_stream.faults().checksum_failures);
  EXPECT_EQ(async_stream.faults().retries, sync_stream.faults().retries);
  EXPECT_DOUBLE_EQ(async_stream.faults().backoff_modeled_seconds,
                   sync_stream.faults().backoff_modeled_seconds);
  EXPECT_EQ(async_device.injected().read_failures,
            sync_device.injected().read_failures);
  EXPECT_EQ(async_device.injected().corrupted_reads,
            sync_device.injected().corrupted_reads);
  ASSERT_GT(sync_stream.faults().transient_errors, 0u);
  ASSERT_GT(sync_stream.faults().checksum_failures, 0u);
}

TEST(AsyncStream, DeepQueueRetriesFaultsAndStaysCorrect) {
  const auto infos = random_intervals(1200, 120, 29);
  Built clean = build_one(infos);
  RetrievalStream clean_stream =
      open_stream(clean.tree, 60.0f, *clean.device, tight_options(0));
  const std::vector<std::uint32_t> expected = drain_ids(clean_stream);
  ASSERT_FALSE(expected.empty());

  Built built = build_one(infos);
  io::FaultConfig config;
  config.fail_reads = {0, 3};
  config.corrupt_reads = {5};
  io::FaultInjectingBlockDevice device(*built.device, config);
  RetrievalStream stream =
      open_stream(built.tree, 60.0f, device, tight_options(4));
  // Resubmission through the queue may change later read ordinals relative
  // to the sync path, but the records delivered must still be exactly the
  // clean run's, and every scheduled fault must have been absorbed.
  EXPECT_EQ(drain_ids(stream), expected);
  EXPECT_EQ(stream.faults().transient_errors + stream.faults().checksum_failures,
            stream.faults().retries);
  EXPECT_GT(stream.faults().retries, 0u);
  EXPECT_GT(stream.faults().backoff_modeled_seconds, 0.0);
}

TEST(AsyncStream, ExhaustedRetriesPropagateThroughTheQueue) {
  Built built = build_one(random_intervals(400, 80, 17));
  io::FaultConfig config;
  config.fail_all_reads = true;
  io::FaultInjectingBlockDevice device(*built.device, config);

  RetrievalOptions options = tight_options(4);
  options.retry.max_attempts = 3;
  RetrievalStream stream = open_stream(built.tree, 40.0f, device, options);
  try {
    (void)drain_ids(stream);
    FAIL() << "exhausted retries did not propagate";
  } catch (const io::IoError& error) {
    EXPECT_EQ(error.kind(), io::IoError::Kind::kTransient);
  }
  EXPECT_EQ(stream.faults().transient_errors, 3u);
  EXPECT_EQ(stream.faults().retries, 2u);
}

// ---------------------------------------------------------------------------
// Shared pool: caching and single-flight stay intact under the queue
// ---------------------------------------------------------------------------

TEST(AsyncStream, PooledDepthFourMatchesPooledSyncAndRunsWarm) {
  const auto infos = random_intervals(2000, 150, 55);
  const auto isovalue = static_cast<core::ValueKey>(70);

  const auto pooled_run = [&](Built& built, io::SharedBufferPool& pool,
                              std::size_t depth) {
    RetrievalStream stream(built.tree.plan(isovalue),
                           built.tree.scalar_kind(),
                           built.tree.record_size(), *built.device,
                           tight_options(depth),
                           BrickDirectory{built.tree.bricks(),
                                          built.tree.chunk_crcs()},
                           &pool);
    const std::vector<std::uint32_t> ids = drain_ids(stream);
    return std::make_pair(ids, stream.cache_stats());
  };

  Built sync_built = build_one(infos);
  io::SharedBufferPool sync_pool(*sync_built.device, 4096);
  const auto [sync_cold_ids, sync_cold_cache] =
      pooled_run(sync_built, sync_pool, 0);
  ASSERT_FALSE(sync_cold_ids.empty());

  Built async_built = build_one(infos);
  io::SharedBufferPool async_pool(*async_built.device, 4096);
  const auto [async_cold_ids, async_cold_cache] =
      pooled_run(async_built, async_pool, 4);
  EXPECT_EQ(async_cold_ids, sync_cold_ids);
  EXPECT_EQ(async_cold_cache.hit_blocks, sync_cold_cache.hit_blocks);
  EXPECT_EQ(async_cold_cache.miss_blocks, sync_cold_cache.miss_blocks);
  ASSERT_GT(async_cold_cache.miss_blocks, 0u);

  // A warm re-run through the same pool touches no device blocks at all.
  const io::IoStats before = *&async_built.device->stats();
  const auto [warm_ids, warm_cache] = pooled_run(async_built, async_pool, 4);
  EXPECT_EQ(warm_ids, sync_cold_ids);
  EXPECT_EQ(warm_cache.miss_blocks, 0u);
  EXPECT_GT(warm_cache.hit_blocks, 0u);
  EXPECT_EQ(async_built.device->stats().blocks_read, before.blocks_read);
}

TEST(AsyncStream, GallopDominatedSchedulesStayTrafficIdentical) {
  // The regression this pins: the dispatch pump may submit *sequential*
  // items across a Case-2 gallop barrier (keeping the queue primed while a
  // prefix scan gallops), but the physical service order — and with it
  // every IoStats counter — must stay identical to the synchronous walk.
  // A small alphabet with a low isovalue produces a plan rich in galloping
  // prefix scans interleaved with full-brick runs.
  const auto infos = random_intervals(3000, 40, 29);
  const auto isovalue = static_cast<core::ValueKey>(7);

  struct Run {
    std::vector<std::uint32_t> ids;
    io::IoStats io;
    std::size_t prefix_items = 0;
    std::size_t sequential_items = 0;
    std::uint64_t submissions = 0;
    std::uint64_t dry_submissions = 0;
  };
  const auto run_at_depth = [&](std::size_t depth) {
    Built built = build_one(infos);
    built.device->reset_stats();
    RetrievalStream stream =
        open_stream(built.tree, isovalue, *built.device, tight_options(depth));
    Run run;
    for (const ScheduledItem& item : stream.schedule().items) {
      if (item.is_prefix()) {
        ++run.prefix_items;
      } else {
        ++run.sequential_items;
      }
    }
    run.ids = drain_ids(stream);
    run.io = built.device->stats();
    if (const io::AsyncIoStats* stats = stream.async_stats()) {
      run.submissions = stats->submissions;
      run.dry_submissions = stats->dry_submissions;
    }
    return run;
  };

  const Run baseline = run_at_depth(0);
  ASSERT_FALSE(baseline.ids.empty());
  // The schedule must actually be gallop-dominated, with sequential items
  // interleaved so the barrier relaxation has something to pipeline.
  ASSERT_GE(baseline.prefix_items, 3u)
      << "schedule no longer gallop-dominated; re-tune the test inputs";
  ASSERT_GE(baseline.sequential_items, 2u);

  for (const std::size_t depth :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Run run = run_at_depth(depth);
    EXPECT_EQ(run.ids, baseline.ids) << "depth " << depth;
    expect_same_io(run.io, baseline.io, "depth " + std::to_string(depth));
  }

  // The relaxation is observable: at depth 4 sequential items submitted
  // across gallop barriers keep the queue non-idle, so some submissions
  // are not dry. (Depth 1 pays every submission dry by construction.)
  const Run depth1 = run_at_depth(1);
  const Run depth4 = run_at_depth(4);
  EXPECT_EQ(depth1.dry_submissions, depth1.submissions);
  EXPECT_LT(depth4.dry_submissions, depth4.submissions);
}

TEST(AsyncStream, ConcurrentPooledStreamsKeepSingleFlightLedger) {
  const auto infos = random_intervals(2500, 150, 67);
  Built built = build_one(infos);
  io::SharedBufferPool pool(*built.device, 4096);

  Built reference_built = build_one(infos);
  RetrievalStream reference = open_stream(reference_built.tree, 80.0f,
                                          *reference_built.device,
                                          tight_options(0));
  const std::vector<std::uint32_t> expected = drain_ids(reference);
  ASSERT_FALSE(expected.empty());

  // Two threads, each with its own depth-4 queue over the one pool,
  // querying the same isovalue: overlapping reads must single-flight
  // (hits + misses + waits == fetches) and both streams must deliver the
  // full record list. TSan runs this suite.
  constexpr int kThreads = 2;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      RetrievalStream stream(built.tree.plan(80.0f),
                             built.tree.scalar_kind(),
                             built.tree.record_size(), *built.device,
                             tight_options(4),
                             BrickDirectory{built.tree.bricks(),
                                            built.tree.chunk_crcs()},
                             &pool);
      ids[t] = drain_ids(stream);
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(ids[t], expected);
  const io::CacheCounters counters = pool.counters();
  EXPECT_EQ(counters.hits + counters.misses + counters.waits,
            counters.fetches);
  EXPECT_GT(counters.fetches, 0u);
}

}  // namespace
}  // namespace oociso::index
