// Concurrent query serving: N simultaneous isovalue queries through the
// shared per-node brick pools must produce meshes bit-identical to serial
// uncached execution — clean, under injected transient/corruption faults,
// and across dead-node failover — while the pools dedup and warm the reads.
// Carries the ctest label `serve`; the concurrency tests double as the
// TSan targets (see CMakePresets.json / CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "data/rm_generator.h"
#include "io/fault_injection.h"
#include "metacell/source.h"
#include "obs/metrics.h"
#include "parallel/cluster.h"
#include "pipeline/query_engine.h"
#include "pipeline/timevarying.h"
#include "serve/query_server.h"

namespace oociso {
namespace {

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return config;
}

bool same_triangles(const extract::TriangleSoup& a,
                    const extract::TriangleSoup& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.triangles().data(), b.triangles().data(),
                      a.size() * sizeof(extract::Triangle)) == 0);
}

/// The isovalue band the 48^3 RM step actually crosses, wide enough that
/// the eight queries' plans overlap heavily (that overlap is what the
/// single-flight dedup and warm reuse act on).
std::vector<core::ValueKey> sweep_isovalues() {
  return {96.0f, 110.0f, 120.0f, 128.0f, 135.0f, 150.0f, 170.0f, 190.0f};
}

/// Serial uncached reference soups, one per isovalue.
std::vector<extract::TriangleSoup> serial_reference(
    parallel::Cluster& cluster, const pipeline::PreprocessResult& prep,
    const std::vector<core::ValueKey>& isovalues) {
  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  std::vector<extract::TriangleSoup> soups;
  soups.reserve(isovalues.size());
  for (const core::ValueKey isovalue : isovalues) {
    soups.push_back(std::move(*engine.run(isovalue, options).triangles_out));
  }
  return soups;
}

// ---------------------------------------------------------------------------
// Concurrency stress: bit-identical to serial
// ---------------------------------------------------------------------------

TEST(QueryServerStress, EightConcurrentQueriesMatchSerialBaseline) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  const std::vector<extract::TriangleSoup> reference =
      serial_reference(cluster, prep, isovalues);

  serve::ServeOptions options;
  options.max_concurrent_queries = 8;
  options.cache_capacity_blocks = 512;
  options.query.render = false;
  options.query.keep_triangles = true;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<pipeline::QueryReport> reports =
      server.serve(isovalues);
  ASSERT_EQ(reports.size(), isovalues.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].triangles_out.has_value());
    EXPECT_TRUE(same_triangles(*reports[i].triangles_out, reference[i]))
        << "isovalue " << isovalues[i];
    EXPECT_FALSE(reports[i].degraded);
  }

  // The pools saw every query; their ledger must balance exactly.
  const io::CacheCounters counters = server.cache_counters();
  EXPECT_EQ(counters.hits + counters.misses + counters.waits,
            counters.fetches);
  EXPECT_GT(counters.fetches, 0u);
  // Overlapping plans dedup: the device was touched less than the queries
  // logically read.
  EXPECT_LT(counters.misses, counters.fetches);
}

TEST(QueryServerStress, ConcurrentQueriesUnderInjectedFaultsStayIdentical) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  const std::vector<extract::TriangleSoup> reference =
      serial_reference(cluster, prep, isovalues);

  // Aggressive rates with a deep retry budget: at these settings a fault is
  // all but guaranteed to occur somewhere in the sweep, while the chance of
  // any single read exhausting 10 attempts is negligible — deterministic
  // assertions on both sides, no flake window.
  serve::ServeOptions options;
  options.max_concurrent_queries = 8;
  options.cache_capacity_blocks = 512;
  io::FaultConfig faults;
  faults.seed = 7;
  faults.read_failure_rate = 0.1;
  faults.read_corruption_rate = 0.3;
  options.inject_faults = faults;
  options.query.render = false;
  options.query.keep_triangles = true;
  options.query.retrieval.retry.max_attempts = 10;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<pipeline::QueryReport> reports =
      server.serve(isovalues);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].triangles_out.has_value());
    EXPECT_TRUE(same_triangles(*reports[i].triangles_out, reference[i]))
        << "isovalue " << isovalues[i];
  }

  // The injectors under the pools really fired, and every corrupted
  // transfer that reached a stream was caught by a chunk CRC (a corrupted
  // frame may be detected by several queries sharing it, so detections can
  // exceed injections — but injections > 0 must imply detections > 0).
  std::uint64_t injected = 0;
  for (std::size_t node = 0; node < cluster.size(); ++node) {
    const io::InjectedFaults* stats = cluster.cache_injected(node);
    ASSERT_NE(stats, nullptr);
    injected += stats->read_failures + stats->corrupted_reads;
  }
  EXPECT_GT(injected, 0u);

  index::RetrievalFaults total;
  for (const auto& report : reports) {
    total.merge(report.total_retrieval_faults());
  }
  EXPECT_GT(total.retries, 0u);
}

TEST(QueryServerStress, DeadNodeFailsOverThroughItsPool) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  const std::vector<core::ValueKey> isovalues = {128.0f, 150.0f};
  const std::vector<extract::TriangleSoup> reference =
      serial_reference(cluster, prep, isovalues);

  serve::ServeOptions options;
  options.max_concurrent_queries = 2;
  options.cache_capacity_blocks = 512;
  options.query.render = false;
  options.query.keep_triangles = true;
  options.query.dead_nodes = {2};
  serve::QueryServer server(cluster, prep, options);

  const std::vector<pipeline::QueryReport> reports =
      server.serve(isovalues);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_TRUE(reports[i].degraded);
    EXPECT_EQ(reports[i].total_failovers(), 1u);
    EXPECT_NE(reports[i].nodes[2].faults.executed_by, 2);
    ASSERT_TRUE(reports[i].triangles_out.has_value());
    EXPECT_TRUE(same_triangles(*reports[i].triangles_out, reference[i]))
        << "isovalue " << isovalues[i];
  }
}

// ---------------------------------------------------------------------------
// Warm/cold equivalence
// ---------------------------------------------------------------------------

TEST(QueryServerWarm, RepeatedSweepIsIdenticalAndStrictlyCheaper) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();

  serve::ServeOptions options;
  options.max_concurrent_queries = 1;  // serial passes isolate warm effects
  options.cache_capacity_blocks = 4096;  // whole working set fits
  options.query.render = false;
  options.query.keep_triangles = true;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<pipeline::QueryReport> cold = server.serve(isovalues);
  const std::vector<pipeline::QueryReport> warm = server.serve(isovalues);
  ASSERT_EQ(cold.size(), warm.size());

  std::uint64_t cold_read_ops = 0;
  std::uint64_t warm_read_ops = 0;
  std::uint64_t warm_hits = 0;
  for (std::size_t i = 0; i < cold.size(); ++i) {
    // Identical records: same mesh, same logical query counters.
    ASSERT_TRUE(same_triangles(*warm[i].triangles_out,
                               *cold[i].triangles_out));
    EXPECT_EQ(warm[i].total_active_metacells(),
              cold[i].total_active_metacells());
    EXPECT_EQ(warm[i].total_triangles(), cold[i].total_triangles());
    for (const auto& node : cold[i].nodes) cold_read_ops += node.io.read_ops;
    for (const auto& node : warm[i].nodes) warm_read_ops += node.io.read_ops;
    warm_hits += warm[i].total_cache().hit_blocks;
  }
  // Everything fits, so the warm pass never touches the device.
  EXPECT_GT(cold_read_ops, 0u);
  EXPECT_LT(warm_read_ops, cold_read_ops);
  EXPECT_EQ(warm_read_ops, 0u);
  EXPECT_GT(warm_hits, 0u);
}

TEST(QueryServerWarm, DropCachesRestoresColdBehaviour) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  serve::ServeOptions options;
  options.max_concurrent_queries = 1;
  options.query.render = false;
  serve::QueryServer server(cluster, prep, options);

  const pipeline::QueryReport first = server.query(128.0f);
  server.drop_caches();
  const pipeline::QueryReport again = server.query(128.0f);

  std::uint64_t first_ops = 0;
  std::uint64_t again_ops = 0;
  for (const auto& node : first.nodes) first_ops += node.io.read_ops;
  for (const auto& node : again.nodes) again_ops += node.io.read_ops;
  EXPECT_EQ(first_ops, again_ops);  // cold again after the drop
  EXPECT_EQ(again.total_cache().hit_blocks, 0u);
}

// ---------------------------------------------------------------------------
// Admission control and API contracts
// ---------------------------------------------------------------------------

TEST(QueryServerAdmission, InFlightNeverExceedsTheConfiguredBound) {
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  serve::ServeOptions options;
  options.max_concurrent_queries = 2;
  options.query.render = false;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  (void)server.serve(isovalues);
  EXPECT_LE(server.peak_in_flight(), 2u);
  EXPECT_GE(server.peak_in_flight(), 1u);
}

TEST(QueryServerAdmission, RegistryGaugeSeesEveryInFlightTransition) {
  // Regression: the server re-points its in-flight gauge at the metrics
  // registry during construction. The old snapshot-then-swap could lose an
  // increment that landed between the snapshot and the swap, skewing every
  // later level and peak the registry exports. The swap now happens while
  // the server is provably quiescent, so the registry gauge must balance
  // exactly: final level 0 and max == the server's own peak.
  const auto volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  obs::MetricsRegistry registry;
  serve::ServeOptions options;
  options.max_concurrent_queries = 3;
  options.query.render = false;
  options.metrics = &registry;
  serve::QueryServer server(cluster, prep, options);

  const std::vector<core::ValueKey> isovalues = sweep_isovalues();
  const auto reports = server.serve(isovalues);
  ASSERT_EQ(reports.size(), isovalues.size());

  obs::Gauge& gauge = registry.gauge("serve.in_flight");
  EXPECT_EQ(gauge.value(), 0);  // every increment found its decrement
  EXPECT_EQ(static_cast<std::size_t>(gauge.max_value()),
            server.peak_in_flight());
  EXPECT_GE(gauge.max_value(), 1);
  EXPECT_LE(gauge.max_value(), 3);
  EXPECT_EQ(registry.counter("serve.queries").value(), isovalues.size());
}

TEST(QueryServerAdmission, RejectsPerQueryInjectionAndZeroSlots) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);

  serve::ServeOptions zero;
  zero.max_concurrent_queries = 0;
  EXPECT_THROW(serve::QueryServer(cluster, prep, zero),
               std::invalid_argument);

  serve::ServeOptions injected;
  injected.query.inject_faults = io::FaultConfig{};
  EXPECT_THROW(serve::QueryServer(cluster, prep, injected),
               std::invalid_argument);
}

TEST(QueryServerAdmission, UseSharedCacheWithoutPoolsThrows) {
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  auto cluster = make_cluster(2);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep =
      pipeline::preprocess(*source, cluster);
  pipeline::QueryEngine engine(cluster, prep);

  pipeline::QueryOptions options;
  options.render = false;
  options.use_shared_cache = true;
  EXPECT_THROW((void)engine.run(128.0f, options), std::logic_error);

  // And the combination the validation exists to prevent.
  cluster.enable_shared_cache(256);
  options.inject_faults = io::FaultConfig{};
  EXPECT_THROW((void)engine.run(128.0f, options), std::invalid_argument);
  EXPECT_THROW(cluster.enable_shared_cache(256), std::logic_error);
}

// ---------------------------------------------------------------------------
// Time-varying warm reuse
// ---------------------------------------------------------------------------

TEST(TimeVaryingServe, RevisitedStepRunsWarm) {
  auto cluster = make_cluster(2);
  pipeline::TimeVaryingEngine engine(
      cluster, [](int step) { return data::generate_rm_timestep(
                                  small_rm(), step); });
  engine.preprocess_steps(200, 2);

  // Uncached reference for bit-identity.
  pipeline::QueryOptions plain;
  plain.render = false;
  plain.keep_triangles = true;
  const pipeline::QueryReport reference = engine.query(200, 128.0f, plain);

  engine.enable_shared_cache(4096);
  const pipeline::QueryReport cold = engine.query(200, 128.0f, plain);
  const pipeline::QueryReport other = engine.query(201, 128.0f, plain);
  const pipeline::QueryReport warm = engine.query(200, 128.0f, plain);

  EXPECT_TRUE(same_triangles(*cold.triangles_out, *reference.triangles_out));
  EXPECT_TRUE(same_triangles(*warm.triangles_out, *reference.triangles_out));
  ASSERT_TRUE(other.triangles_out.has_value());

  std::uint64_t cold_ops = 0;
  std::uint64_t warm_ops = 0;
  for (const auto& node : cold.nodes) cold_ops += node.io.read_ops;
  for (const auto& node : warm.nodes) warm_ops += node.io.read_ops;
  EXPECT_GT(cold_ops, 0u);
  EXPECT_EQ(warm_ops, 0u);  // both steps fit; the revisit is pure hits
  EXPECT_GT(warm.total_cache().hit_blocks, 0u);

  cluster.disable_shared_cache();
}

}  // namespace
}  // namespace oociso
