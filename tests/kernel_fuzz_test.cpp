// Differential fuzzing of the SIMD classification kernels: for every
// dispatchable ISA (scalar, sse2, avx2 — whatever this host can run) the
// incremental pipeline must emit triangles bit-identical to the per-cell
// reference AND to its own scalar-classify run, with identical
// deterministic stats (vertex-cache hits included between incremental
// runs). The sweeps concentrate on where a lane-width bug would hide:
//   * x extents of 0/1/±1 cells around the 4-, 8-, and 64-wide boundaries
//     (remainder lanes, exactly-full mask words, sample rows one word
//     longer than cell rows),
//   * all 256 cube configurations at every lane offset along a row,
//   * isovalues exactly equal to sample values (strict `<` boundary),
//   * NaN and ±inf samples and a NaN isovalue (ordered-compare semantics
//     must match scalar `<` exactly),
//   * seeded random volumes in u8/u16/float at randomized shapes.
// Carries the ctest label `kernel`; CI runs it under ASan/UBSan and TSan.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/volume.h"
#include "extract/kernel.h"
#include "extract/marching_cubes.h"
#include "kernel_test_util.h"
#include "metacell/metacell.h"
#include "util/rng.h"

namespace oociso::extract {
namespace {

using testutil::bit_identical;
using testutil::expect_counter_stats_equal;
using testutil::expect_stats_equal;
using testutil::kCorner;
using testutil::random_volume;

/// One differential probe: per-cell reference vs scalar incremental vs
/// every other dispatchable ISA, soups bit-identical throughout.
template <typename T>
void check_all_isas(const core::Volume<T>& volume, float isovalue,
                    const std::string& context) {
  TriangleSoup percell;
  const MarchingCubesStats ref =
      extract_volume_percell(volume, isovalue, percell);

  TriangleSoup scalar_soup;
  const MarchingCubesStats scalar_stats = extract_volume(
      volume, isovalue, scalar_soup, KernelOptions{KernelIsa::kScalar});
  EXPECT_TRUE(bit_identical(scalar_soup, percell)) << context << " (scalar)";
  expect_counter_stats_equal(scalar_stats, ref);

  for (const KernelIsa isa : kernel::dispatchable_isas()) {
    if (isa == KernelIsa::kScalar) continue;
    TriangleSoup simd_soup;
    const MarchingCubesStats simd_stats =
        extract_volume(volume, isovalue, simd_soup, KernelOptions{isa});
    EXPECT_TRUE(bit_identical(simd_soup, scalar_soup))
        << context << " (" << kernel::isa_name(isa) << ")";
    expect_stats_equal(simd_stats, scalar_stats);
  }
}

template <typename T>
void sweep_sizes(std::uint64_t seed_base, float lo, float hi) {
  // Sample extents straddling the SSE (4), AVX2 (8), and mask-word (64)
  // widths; nx=1 is the zero-cell degenerate, nx=65 the 64-cell row whose
  // sample rows need one more bitmask word than its cell rows.
  const std::int32_t xs[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 63, 64, 65};
  std::uint64_t seed = seed_base;
  for (const std::int32_t nx : xs) {
    const core::Volume<T> volume = random_volume<T>({nx, 3, 2}, seed++);
    for (int step = 0; step <= 2; ++step) {
      const float isovalue =
          lo + (hi - lo) * static_cast<float>(step) / 2.0f;
      check_all_isas(volume, isovalue,
                     std::to_string(nx) + "x3x2 iso " +
                         std::to_string(isovalue));
    }
  }
  // The lane math only runs along x, but the row loops must stay correct
  // when y/z carry the big extents instead.
  for (const core::GridDims dims :
       {core::GridDims{5, 64, 2}, core::GridDims{4, 3, 65}}) {
    const core::Volume<T> volume = random_volume<T>(dims, seed++);
    check_all_isas(volume, (lo + hi) / 2.0f,
                   std::to_string(dims.nx) + "x" + std::to_string(dims.ny) +
                       "x" + std::to_string(dims.nz));
  }
}

TEST(KernelFuzz, LaneWidthEdgeSizesU8) {
  sweep_sizes<std::uint8_t>(7000, 10.0f, 240.0f);
}

TEST(KernelFuzz, LaneWidthEdgeSizesU16) {
  sweep_sizes<std::uint16_t>(7100, 1000.0f, 64000.0f);
}

TEST(KernelFuzz, LaneWidthEdgeSizesFloat) {
  sweep_sizes<float>(7200, 10.0f, 245.0f);
}

TEST(KernelFuzz, All256CubeCasesAtEveryLaneOffset) {
  // An 11-cell row covers every offset mod 4, 8, and the row remainder.
  // Each probe plants one cube configuration at cell (offset, 0, 0) in an
  // otherwise all-outside volume, so a lane-misaligned classify would
  // move or drop that cell's triangles.
  constexpr std::int32_t kSamplesX = 12;
  for (std::int32_t offset = 0; offset < kSamplesX - 1; ++offset) {
    for (unsigned cube = 0; cube < 256; ++cube) {
      core::Volume<float> volume({kSamplesX, 2, 2});
      for (std::int32_t z = 0; z < 2; ++z) {
        for (std::int32_t y = 0; y < 2; ++y) {
          for (std::int32_t x = 0; x < kSamplesX; ++x) {
            volume.at(x, y, z) = 181.25f;
          }
        }
      }
      for (unsigned c = 0; c < 8; ++c) {
        if ((cube & (1u << c)) != 0) {
          volume.at(offset + kCorner[c][0], kCorner[c][1], kCorner[c][2]) =
              37.5f;
        }
      }
      check_all_isas(volume, 100.0f,
                     "cube " + std::to_string(cube) + " at offset " +
                         std::to_string(offset));
    }
  }
}

TEST(KernelFuzz, IsovalueEqualsSampleValues) {
  // Inside is the strict `value < isovalue`: a sample exactly at the
  // isovalue is outside in every kernel, or the surface shifts.
  const core::Volume<std::uint8_t> volume = random_volume<std::uint8_t>(
      {19, 7, 5}, 8800);
  for (const auto [x, y, z] :
       {std::array<std::int32_t, 3>{0, 0, 0}, {9, 3, 2}, {18, 6, 4},
        {4, 1, 3}}) {
    const float isovalue = static_cast<float>(volume.at(x, y, z));
    check_all_isas(volume, isovalue,
                   "iso == sample at " + std::to_string(x) + "," +
                       std::to_string(y) + "," + std::to_string(z));
  }
  check_all_isas(volume, 0.0f, "iso 0");
  check_all_isas(volume, 255.0f, "iso 255");
}

TEST(KernelFuzz, NanAndInfInputs) {
  core::Volume<float> volume = random_volume<float>({17, 5, 4}, 9900);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // Scatter non-finite samples across lane positions; `x < iso` is false
  // for NaN in scalar and in the ordered SIMD compares alike, -inf is
  // inside everything, +inf inside nothing.
  volume.at(0, 0, 0) = nan;
  volume.at(7, 2, 1) = nan;
  volume.at(16, 4, 3) = nan;
  volume.at(3, 1, 2) = inf;
  volume.at(12, 3, 0) = -inf;
  volume.at(8, 0, 3) = -inf;
  for (const float isovalue : {50.0f, 128.0f, 245.0f}) {
    check_all_isas(volume, isovalue,
                   "nan/inf volume iso " + std::to_string(isovalue));
  }
  // A NaN isovalue classifies nothing as inside, in every ISA.
  TriangleSoup empty_soup;
  const MarchingCubesStats none =
      extract_volume(volume, nan, empty_soup, KernelOptions{});
  EXPECT_EQ(none.active_cells, 0u);
  EXPECT_TRUE(empty_soup.empty());
  check_all_isas(volume, nan, "nan isovalue");
}

TEST(KernelFuzz, RandomizedDifferential) {
  util::Xoshiro256 rng(0xF0220ABCu);
  for (int trial = 0; trial < 24; ++trial) {
    const core::GridDims dims = {
        1 + static_cast<std::int32_t>(rng.bounded(70)),
        1 + static_cast<std::int32_t>(rng.bounded(9)),
        1 + static_cast<std::int32_t>(rng.bounded(9))};
    const std::uint64_t seed = 0x5EED0000u + static_cast<std::uint64_t>(trial);
    const float isovalue = static_cast<float>(rng.bounded(256));
    const std::string context =
        "trial " + std::to_string(trial) + " " + std::to_string(dims.nx) +
        "x" + std::to_string(dims.ny) + "x" + std::to_string(dims.nz) +
        " iso " + std::to_string(isovalue);
    switch (trial % 3) {
      case 0:
        check_all_isas(random_volume<std::uint8_t>(dims, seed), isovalue,
                       context);
        break;
      case 1:
        check_all_isas(random_volume<std::uint16_t>(dims, seed),
                       isovalue * 256.0f, context);
        break;
      default:
        check_all_isas(random_volume<float>(dims, seed), isovalue, context);
        break;
    }
  }
}

TEST(KernelFuzz, MetacellsAcrossIsas) {
  // The metacell path adds partial valid-cell extents and non-zero sample
  // origins on top of the volume path; every ISA must translate them
  // identically.
  util::Xoshiro256 rng(31337);
  for (int trial = 0; trial < 12; ++trial) {
    metacell::DecodedMetacell cell;
    cell.id = static_cast<std::uint32_t>(trial);
    cell.samples_per_side = 9;
    cell.sample_origin = {8 * (trial % 4), 8 * (trial % 3), 8 * (trial % 2)};
    cell.valid_cells = {1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8)),
                        1 + static_cast<std::int32_t>(rng.bounded(8))};
    cell.samples.resize(9 * 9 * 9);
    for (float& sample : cell.samples) {
      sample = static_cast<float>(rng.bounded(256));
    }

    for (const float isovalue : {40.0f, 127.5f, 200.0f}) {
      TriangleSoup percell;
      const MarchingCubesStats ref =
          extract_metacell_percell(cell, isovalue, percell);
      TriangleSoup scalar_soup;
      const MarchingCubesStats scalar_stats = extract_metacell(
          cell, isovalue, scalar_soup, KernelOptions{KernelIsa::kScalar});
      EXPECT_TRUE(bit_identical(scalar_soup, percell))
          << "trial " << trial << " iso " << isovalue;
      expect_counter_stats_equal(scalar_stats, ref);

      for (const KernelIsa isa : kernel::dispatchable_isas()) {
        if (isa == KernelIsa::kScalar) continue;
        TriangleSoup simd_soup;
        const MarchingCubesStats simd_stats =
            extract_metacell(cell, isovalue, simd_soup, KernelOptions{isa});
        EXPECT_TRUE(bit_identical(simd_soup, scalar_soup))
            << "trial " << trial << " iso " << isovalue << " "
            << kernel::isa_name(isa);
        expect_stats_equal(simd_stats, scalar_stats);
      }
    }
  }
}

}  // namespace
}  // namespace oociso::extract
