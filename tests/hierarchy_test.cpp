// Property and convergence tests for the multi-resolution metacell
// hierarchy (index/hierarchy.h, DESIGN §16), locking down the progressive
// serving contract:
//   * every coarse node's (vmin, vmax) is the *exact* hull of its kept
//     children's intervals on randomized volumes — neither looser (wasted
//     I/O) nor tighter (a missed fine surface breaks conservativeness),
//   * refinement is monotone: triangle counts only grow level to level,
//     every active fine metacell's ancestors stab the isovalue at every
//     coarse level, and the final refinement level reproduces the flat
//     (non-hierarchical) mesh bit-identically,
//   * deadline / memory-budget / cancellation bounds hold under 8-way
//     concurrent serving: peak refinement batch bytes never exceed the
//     budget, no batch is issued after a stop is observed, and the
//     coarsest level always completes with a non-empty surface.
// Carries the ctest label `hierarchy`; CI runs it under ASan/UBSan and
// TSan (the concurrent-serve tests are the TSan targets).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "data/rm_generator.h"
#include "index/compact_interval_tree.h"
#include "index/hierarchy.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "pipeline/progressive.h"
#include "pipeline/query_engine.h"
#include "serve/query_server.h"
#include "util/rng.h"

namespace oociso {
namespace {

using index::CompactIntervalTree;
using index::CompactTreeBuilder;
using index::HierarchyLevel;

core::VolumeU8 random_volume(core::GridDims dims, std::uint64_t seed) {
  core::VolumeU8 volume(dims);
  util::Xoshiro256 rng(seed);
  for (std::int32_t z = 0; z < dims.nz; ++z) {
    for (std::int32_t y = 0; y < dims.ny; ++y) {
      for (std::int32_t x = 0; x < dims.nx; ++x) {
        volume.at(x, y, z) = static_cast<std::uint8_t>(rng.bounded(256));
      }
    }
  }
  return volume;
}

/// Builds the striped v5 layout over `p` in-memory devices.
struct Built {
  std::vector<std::unique_ptr<io::MemoryBlockDevice>> devices;
  CompactTreeBuilder::Result result;
};

Built build_leveled(const core::VolumeU8& volume, std::size_t p,
                    std::int32_t levels) {
  Built built;
  std::vector<io::BlockDevice*> pointers;
  for (std::size_t i = 0; i < p; ++i) {
    built.devices.push_back(std::make_unique<io::MemoryBlockDevice>(512));
    pointers.push_back(built.devices.back().get());
  }
  const auto source = metacell::make_source(volume, 9);
  built.result = CompactTreeBuilder::build(source->scan(), *source, pointers,
                                           {}, codec::Codec::kRaw, {}, levels);
  return built;
}

/// Merges every tree's stripe of coarse level `level` (1-based) into one
/// id -> interval map, asserting ids are store-unique.
std::map<std::uint32_t, core::ValueInterval> merge_level(
    const std::vector<CompactIntervalTree>& trees, std::int32_t level) {
  std::map<std::uint32_t, core::ValueInterval> merged;
  for (const CompactIntervalTree& tree : trees) {
    const HierarchyLevel& stripe =
        tree.hierarchy()[static_cast<std::size_t>(level - 1)];
    EXPECT_EQ(stripe.level, level);
    for (const index::HierarchyEntry& entry : stripe.entries) {
      const auto [it, inserted] = merged.emplace(entry.id, entry.interval);
      EXPECT_TRUE(inserted) << "coarse id " << entry.id
                            << " stored on two stripes at level " << level;
    }
  }
  return merged;
}

// ---------------------------------------------------------------------------
// Coarse intervals are exact hulls of their kept children
// ---------------------------------------------------------------------------

TEST(HierarchyProperty, CoarseIntervalsAreExactHullsOnRandomVolumes) {
  // Randomized volumes, odd and even extents (odd extents exercise the
  // ceil-sized coarse lattice's clamped border). The expected hierarchy is
  // recomputed here by an independent map-based recurrence over the kept
  // level-0 intervals; the builder's entries must match value-exactly.
  const core::GridDims shapes[] = {{33, 29, 27}, {40, 24, 17}, {25, 25, 25}};
  std::uint64_t seed = 4100;
  for (const core::GridDims dims : shapes) {
    const core::VolumeU8 volume = random_volume(dims, seed++);
    const auto source = metacell::make_source(volume, 9);
    const metacell::MetacellGeometry base = source->geometry();
    Built built = build_leveled(volume, 3, /*levels=*/4);

    // Level 0: the kept (non-degenerate) fine metacells.
    std::map<std::uint32_t, core::ValueInterval> kept;
    for (const metacell::MetacellInfo& info : source->scan()) {
      kept.emplace(info.id, info.interval);
    }

    const std::size_t stored = built.result.trees.front().hierarchy_levels();
    ASSERT_GE(stored, 1u);
    for (std::int32_t level = 1; level <= static_cast<std::int32_t>(stored);
         ++level) {
      const metacell::MetacellGeometry child_geometry =
          index::hierarchy_level_geometry(base, level - 1);
      const metacell::MetacellGeometry coarse_geometry =
          index::hierarchy_level_geometry(base, level);
      const core::GridDims child_dims = child_geometry.metacell_dims();
      const core::GridDims coarse_dims = coarse_geometry.metacell_dims();

      std::map<std::uint32_t, core::ValueInterval> expected;
      for (std::int32_t z = 0; z < coarse_dims.nz; ++z) {
        for (std::int32_t y = 0; y < coarse_dims.ny; ++y) {
          for (std::int32_t x = 0; x < coarse_dims.nx; ++x) {
            bool any = false;
            core::ValueInterval hull;
            for (std::int32_t dz = 0; dz < 2; ++dz) {
              for (std::int32_t dy = 0; dy < 2; ++dy) {
                for (std::int32_t dx = 0; dx < 2; ++dx) {
                  const core::Coord3 child{2 * x + dx, 2 * y + dy, 2 * z + dz};
                  if (child.x >= child_dims.nx || child.y >= child_dims.ny ||
                      child.z >= child_dims.nz) {
                    continue;
                  }
                  const auto it = kept.find(child_geometry.id(child));
                  if (it == kept.end()) continue;
                  hull = any ? hull.hull(it->second) : it->second;
                  any = true;
                }
              }
            }
            if (any) expected.emplace(coarse_geometry.id({x, y, z}), hull);
          }
        }
      }

      const std::map<std::uint32_t, core::ValueInterval> actual =
          merge_level(built.result.trees, level);
      EXPECT_EQ(actual, expected)
          << dims.nx << "x" << dims.ny << "x" << dims.nz << " level " << level;
      kept = expected;  // next level's children
    }
  }
}

TEST(HierarchyProperty, LevelDimsCeilSizedSoEveryChildHasAParent) {
  // n_l = ceil((n-1) / 2^l) + 1: the coarse lattice always reaches the
  // volume edge, so child coordinate c at level l-1 maps to parent c/2 in
  // bounds — a floor-sized lattice would orphan border children.
  util::Xoshiro256 rng(0xD1135u);
  for (int trial = 0; trial < 64; ++trial) {
    const core::GridDims base = {2 + static_cast<std::int32_t>(rng.bounded(600)),
                                 2 + static_cast<std::int32_t>(rng.bounded(600)),
                                 2 + static_cast<std::int32_t>(rng.bounded(600))};
    core::GridDims prev = base;
    for (std::int32_t level = 1; level <= 6; ++level) {
      const core::GridDims dims = index::hierarchy_level_dims(base, level);
      EXPECT_GE(dims.nx, 2);
      EXPECT_GE(dims.ny, 2);
      EXPECT_GE(dims.nz, 2);
      const std::int32_t stride = 1 << level;
      // Last sample clamps to the edge; the one before must still be short
      // of it, or the lattice would carry a redundant plane.
      EXPECT_GE((dims.nx - 1) * stride, base.nx - 1);
      EXPECT_LT((dims.nx - 2) * stride, base.nx - 1);
      // Every child-level sample has a parent sample at half its coord.
      EXPECT_LE((prev.nx + 1) / 2, dims.nx);
      prev = dims;
    }
  }
}

TEST(HierarchyProperty, CoarseRecordOffsetsAscendPerDevice) {
  // plan_level sorts nothing — it relies on entries being appended in
  // ascending device order so coalesced coarse reads stay sequential.
  const core::VolumeU8 volume = random_volume({40, 36, 33}, 77);
  Built built = build_leveled(volume, 4, /*levels=*/3);
  for (const CompactIntervalTree& tree : built.result.trees) {
    std::uint64_t last = 0;
    bool first = true;
    for (const HierarchyLevel& level : tree.hierarchy()) {
      for (const index::HierarchyEntry& entry : level.entries) {
        if (!first) EXPECT_GT(entry.offset, last);
        last = entry.offset;
        first = false;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Serialization: --levels 1 is byte-identical to the flat build
// ---------------------------------------------------------------------------

TEST(HierarchyFormat, LevelsOneIsByteIdenticalToFlatBuild) {
  const core::VolumeU8 volume = random_volume({40, 36, 33}, 991);
  Built flat = build_leveled(volume, 2, /*levels=*/1);
  Built one = build_leveled(volume, 2, /*levels=*/1);
  Built leveled = build_leveled(volume, 2, /*levels=*/3);

  ASSERT_EQ(flat.result.trees.front().format_version(), 2u);
  ASSERT_EQ(one.result.trees.front().format_version(), 2u);
  ASSERT_EQ(leveled.result.trees.front().format_version(), 5u);
  EXPECT_EQ(one.result.hierarchy_nodes_written, 0u);

  for (std::size_t d = 0; d < flat.devices.size(); ++d) {
    // Serialized trees identical at levels == 1...
    EXPECT_EQ(flat.result.trees[d].to_bytes(), one.result.trees[d].to_bytes());
    // ...and the leveled build only ever *appends*: its device bytes start
    // with the flat build's, bit for bit.
    const std::uint64_t flat_size = flat.devices[d]->size();
    ASSERT_GE(leveled.devices[d]->size(), flat_size);
    std::vector<std::byte> a(flat_size);
    std::vector<std::byte> b(flat_size);
    flat.devices[d]->read(0, a);
    leveled.devices[d]->read(0, b);
    EXPECT_EQ(a, b) << "device " << d;
  }

  // A v5 round trip preserves the hierarchy exactly.
  const CompactIntervalTree reread =
      CompactIntervalTree::from_bytes(leveled.result.trees[0].to_bytes());
  ASSERT_EQ(reread.hierarchy_levels(),
            leveled.result.trees[0].hierarchy_levels());
  for (std::size_t l = 0; l < reread.hierarchy_levels(); ++l) {
    const auto& before = leveled.result.trees[0].hierarchy()[l].entries;
    const auto& after = reread.hierarchy()[l].entries;
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t e = 0; e < before.size(); ++e) {
      EXPECT_EQ(before[e].id, after[e].id);
      EXPECT_EQ(before[e].interval, after[e].interval);
      EXPECT_EQ(before[e].offset, after[e].offset);
      EXPECT_EQ(before[e].crc, after[e].crc);
    }
  }
}

TEST(HierarchyFormat, PlanLevelRejectsMissingLevels) {
  const core::VolumeU8 volume = random_volume({33, 29, 27}, 13);
  Built built = build_leveled(volume, 2, /*levels=*/3);
  const CompactIntervalTree& tree = built.result.trees.front();
  const auto stored = static_cast<std::int32_t>(tree.hierarchy_levels());
  EXPECT_NO_THROW((void)tree.plan_level(128.0f, stored));
  EXPECT_THROW((void)tree.plan_level(128.0f, stored + 1), std::out_of_range);
  // Level 0 degenerates to the flat plan.
  EXPECT_EQ(tree.plan_level(128.0f, 0).scans.size(),
            tree.plan(128.0f).scans.size());
}

// ---------------------------------------------------------------------------
// Monotone refinement down to the flat mesh
// ---------------------------------------------------------------------------

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {48, 48, 44};
  return config;
}

pipeline::PreprocessResult preprocess_leveled(parallel::Cluster& cluster,
                                              const core::VolumeU8& volume,
                                              std::int32_t levels) {
  const auto source = metacell::make_source(volume, 9);
  pipeline::PreprocessConfig config;
  config.levels = levels;
  return pipeline::preprocess(*source, cluster, config);
}

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

TEST(HierarchyRefinement, MonotoneAndFinalLevelMatchesFlatMeshBitwise) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, 3);
  ASSERT_EQ(prep.hierarchy_levels(), 2u);

  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  options.compute_mesh_crc = true;

  for (const core::ValueKey isovalue : {110.0f, 128.0f, 170.0f}) {
    const pipeline::QueryReport flat =
        pipeline::QueryEngine(cluster, prep).run(isovalue, options);
    pipeline::ProgressiveReport report =
        pipeline::ProgressiveEngine(cluster, prep).run(isovalue, options);

    // Refined all the way down, coarsest first.
    ASSERT_EQ(report.levels.size(), 3u);
    EXPECT_EQ(report.levels.front().level, 2);
    EXPECT_EQ(report.finest_level_completed, 0);
    EXPECT_FALSE(report.deadline_expired);
    EXPECT_FALSE(report.cancelled);
    EXPECT_EQ(report.batches_after_cancel, 0u);

    // Triangles only grow; elapsed stamps only grow.
    for (std::size_t l = 1; l < report.levels.size(); ++l) {
      EXPECT_GE(report.levels[l].triangles, report.levels[l - 1].triangles)
          << "isovalue " << isovalue;
      EXPECT_GE(report.levels[l].elapsed_ms, report.levels[l - 1].elapsed_ms);
    }
    EXPECT_GT(report.levels.front().triangles, 0u) << "isovalue " << isovalue;

    // The final refinement level IS the flat query: canonical hash equal,
    // triangle soup bit-identical.
    ASSERT_TRUE(flat.mesh_crc.has_value());
    ASSERT_TRUE(report.mesh_crc.has_value());
    EXPECT_EQ(*report.mesh_crc, *flat.mesh_crc) << "isovalue " << isovalue;
    ASSERT_TRUE(flat.triangles_out.has_value());
    const extract::TriangleSoup& flat_mesh = *flat.triangles_out;
    ASSERT_EQ(report.mesh.size(), flat_mesh.size());
    if (!flat_mesh.empty()) {
      EXPECT_EQ(std::memcmp(report.mesh.triangles().data(),
                            flat_mesh.triangles().data(),
                            flat_mesh.size() * sizeof(extract::Triangle)),
                0)
          << "isovalue " << isovalue;
    }
  }
}

TEST(HierarchyRefinement, ActiveFineMetacellsHaveStabbingAncestors) {
  // Conservativeness end to end: every fine metacell whose interval stabs
  // the isovalue must have an ancestor entry at EVERY stored level whose
  // hull also stabs it — otherwise coarse-first refinement would skip
  // surface the flat query finds.
  const core::VolumeU8 volume = random_volume({40, 36, 33}, 2024);
  const auto source = metacell::make_source(volume, 9);
  const metacell::MetacellGeometry base = source->geometry();
  Built built = build_leveled(volume, 3, /*levels=*/4);
  const auto stored =
      static_cast<std::int32_t>(built.result.trees.front().hierarchy_levels());
  ASSERT_GE(stored, 2);

  for (const core::ValueKey isovalue : {64.0f, 128.0f, 200.0f}) {
    for (std::int32_t level = 1; level <= stored; ++level) {
      const std::map<std::uint32_t, core::ValueInterval> coarse =
          merge_level(built.result.trees, level);
      const metacell::MetacellGeometry coarse_geometry =
          index::hierarchy_level_geometry(base, level);
      const std::int32_t shift = level;
      for (const metacell::MetacellInfo& info : source->scan()) {
        if (!info.interval.stabs(isovalue)) continue;
        const core::Coord3 fine = base.coord(info.id);
        const core::Coord3 ancestor{fine.x >> shift, fine.y >> shift,
                                    fine.z >> shift};
        const auto it = coarse.find(coarse_geometry.id(ancestor));
        ASSERT_NE(it, coarse.end())
            << "fine id " << info.id << " has no level-" << level
            << " ancestor";
        EXPECT_TRUE(it->second.stabs(isovalue))
            << "fine id " << info.id << " active at " << isovalue
            << " but its level-" << level << " ancestor " << it->second
            << " does not stab";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deadline / budget / cancellation under 8-way concurrent serving
// ---------------------------------------------------------------------------

TEST(HierarchyServe, BudgetAndIdentityHoldUnderEightWayConcurrentServe) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, 3);

  // Flat references (serial, uncached) before the server owns the pools.
  const std::vector<core::ValueKey> isovalues = {96.0f,  110.0f, 120.0f,
                                                 128.0f, 135.0f, 150.0f,
                                                 170.0f, 190.0f};
  std::vector<std::uint32_t> flat_crc;
  {
    pipeline::QueryEngine engine(cluster, prep);
    pipeline::QueryOptions options;
    options.render = false;
    options.compute_mesh_crc = true;
    for (const core::ValueKey isovalue : isovalues) {
      flat_crc.push_back(*engine.run(isovalue, options).mesh_crc);
    }
  }

  serve::ServeOptions serve_options;
  serve_options.max_concurrent_queries = 8;
  serve_options.cache_capacity_blocks = 512;
  serve_options.query.render = false;
  serve::QueryServer server(cluster, prep, serve_options);

  constexpr std::uint64_t kBudget = 48 * 1024;
  std::vector<pipeline::ProgressiveReport> reports(isovalues.size());
  {
    std::vector<std::thread> clients;
    clients.reserve(isovalues.size());
    for (std::size_t i = 0; i < isovalues.size(); ++i) {
      clients.emplace_back([&, i] {
        serve::ProgressiveParams params;
        params.memory_budget_bytes = kBudget;
        reports[i] = server.query_progressive(isovalues[i], params);
      });
    }
    for (std::thread& client : clients) client.join();
  }

  for (std::size_t i = 0; i < reports.size(); ++i) {
    const pipeline::ProgressiveReport& report = reports[i];
    // Budget respected: refinement batches never held more bytes at once.
    EXPECT_LE(report.peak_batch_bytes, kBudget) << "isovalue " << isovalues[i];
    EXPECT_EQ(report.batches_after_cancel, 0u);
    // No deadline, no cancel: every request refines to the flat mesh and
    // reproduces the serial baseline hash despite 8-way interleaving.
    EXPECT_EQ(report.finest_level_completed, 0);
    ASSERT_TRUE(report.mesh_crc.has_value());
    EXPECT_EQ(*report.mesh_crc, flat_crc[i]) << "isovalue " << isovalues[i];
    for (std::size_t l = 1; l < report.levels.size(); ++l) {
      EXPECT_GE(report.levels[l].triangles, report.levels[l - 1].triangles);
    }
  }
}

TEST(HierarchyServe, ExpiredDeadlineStillYieldsNonEmptyCoarseSurface) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, 3);
  serve::ServeOptions serve_options;
  serve_options.query.render = false;
  serve::QueryServer server(cluster, prep, serve_options);

  serve::ProgressiveParams params;
  params.deadline_ms = 1e-6;  // expired before any refinement can start
  const pipeline::ProgressiveReport report =
      server.query_progressive(128.0f, params);

  // The coarsest level is exempt from the deadline and must deliver a
  // surface; refinement past it was cut off cleanly.
  ASSERT_EQ(report.levels.size(), 1u);
  EXPECT_EQ(report.levels.front().level, 2);
  EXPECT_GT(report.levels.front().triangles, 0u);
  EXPECT_FALSE(report.mesh.empty());
  EXPECT_TRUE(report.deadline_expired);
  EXPECT_FALSE(report.cancelled);
  EXPECT_EQ(report.finest_level_completed, 2);
  EXPECT_EQ(report.batches_after_cancel, 0u);
}

TEST(HierarchyServe, PreCancelledRequestStopsAfterTheMandatoryLevel) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(4);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, 3);
  serve::ServeOptions serve_options;
  serve_options.query.render = false;
  serve::QueryServer server(cluster, prep, serve_options);

  std::atomic<bool> cancel{true};
  serve::ProgressiveParams params;
  params.cancel = &cancel;
  const pipeline::ProgressiveReport report =
      server.query_progressive(128.0f, params);

  ASSERT_EQ(report.levels.size(), 1u);
  EXPECT_GT(report.levels.front().triangles, 0u);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.batches_after_cancel, 0u);
}

TEST(HierarchyServe, MaxLevelFloorsRefinement) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, 3);
  serve::ServeOptions serve_options;
  serve_options.query.render = false;
  serve::QueryServer server(cluster, prep, serve_options);

  serve::ProgressiveParams params;
  params.max_level = 1;
  const pipeline::ProgressiveReport report =
      server.query_progressive(128.0f, params);
  ASSERT_EQ(report.levels.size(), 2u);
  EXPECT_EQ(report.levels.back().level, 1);
  EXPECT_EQ(report.finest_level_completed, 1);
  EXPECT_FALSE(report.deadline_expired);
  EXPECT_FALSE(report.cancelled);
}

TEST(HierarchyServe, FlatIndexDegeneratesToTheFlatQuery) {
  const core::VolumeU8 volume = data::generate_rm_timestep(small_rm(), 200);
  auto cluster = make_cluster(2);
  const pipeline::PreprocessResult prep =
      preprocess_leveled(cluster, volume, /*levels=*/1);
  ASSERT_EQ(prep.hierarchy_levels(), 0u);
  serve::ServeOptions serve_options;
  serve_options.query.render = false;
  serve::QueryServer server(cluster, prep, serve_options);

  const pipeline::ProgressiveReport report =
      server.query_progressive(128.0f, {});
  ASSERT_EQ(report.levels.size(), 1u);
  EXPECT_EQ(report.levels.front().level, 0);
  EXPECT_EQ(report.finest_level_completed, 0);
  EXPECT_TRUE(report.full.has_value());
}

}  // namespace
}  // namespace oociso
