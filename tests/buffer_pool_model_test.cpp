// Property-based model tests for the two block caches: BufferPool (the
// exclusive write-back pool) is driven with random operation sequences
// against a plain byte-map reference model, and SharedBufferPool (the
// serving-side shared cache) is checked for its accounting invariant, its
// single-flight read dedup, and invalidate-forces-refetch semantics.
// Carries the ctest label `serve` together with serve_test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "io/buffer_pool.h"
#include "io/memory_block_device.h"
#include "io/shared_buffer_pool.h"
#include "util/rng.h"

namespace oociso {
namespace {

constexpr std::uint64_t kBlock = 64;  // small blocks -> many interactions

std::byte pattern_byte(std::uint64_t offset) {
  return static_cast<std::byte>((offset * 2654435761u) >> 13);
}

/// Fills a device with a position-dependent pattern so any misplaced or
/// stale byte is detectable from its offset alone.
void fill_device(io::MemoryBlockDevice& device, std::uint64_t bytes) {
  std::vector<std::byte> data(static_cast<std::size_t>(bytes));
  for (std::uint64_t i = 0; i < bytes; ++i) data[i] = pattern_byte(i);
  device.write(0, data);
}

// ---------------------------------------------------------------------------
// BufferPool vs reference model
// ---------------------------------------------------------------------------

// The reference model is the simplest thing that could be correct: a flat
// byte map. The pool must agree with it after any interleaving of reads,
// writes, pins, flushes — while also keeping its own bookkeeping invariants:
//   * hits + misses == block fetches we performed,
//   * resident == misses - evictions (nothing else removes frames),
//   * resident never exceeds capacity,
//   * pinned frames are never evicted and their bytes stay stable.
TEST(BufferPoolModel, RandomOpsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Xoshiro256 rng(seed);
    io::MemoryBlockDevice device(kBlock);
    const std::uint64_t device_bytes = kBlock * 40;
    fill_device(device, device_bytes);

    const std::size_t capacity = 8;
    io::BufferPool pool(device, capacity);
    std::vector<std::byte> model(static_cast<std::size_t>(device_bytes));
    for (std::uint64_t i = 0; i < device_bytes; ++i) {
      model[static_cast<std::size_t>(i)] = pattern_byte(i);
    }

    std::uint64_t fetches = 0;  // block touches we asked the pool for
    const auto blocks_of = [&](std::uint64_t offset, std::size_t length) {
      return (offset % kBlock + length + kBlock - 1) / kBlock;
    };

    for (int op = 0; op < 400; ++op) {
      const std::uint64_t offset = rng.bounded(device_bytes - 1);
      const std::size_t length = static_cast<std::size_t>(
          1 + rng.bounded(std::min<std::uint64_t>(device_bytes - offset,
                                                  kBlock * 3)));
      switch (rng.bounded(4)) {
        case 0: {  // read: must match the model exactly
          std::vector<std::byte> got(length);
          pool.read(offset, got);
          fetches += blocks_of(offset, length);
          ASSERT_EQ(0, std::memcmp(got.data(),
                                   model.data() + static_cast<std::size_t>(
                                                      offset),
                                   length));
          break;
        }
        case 1: {  // write: apply to both pool and model
          std::vector<std::byte> data(length);
          for (auto& b : data) {
            b = static_cast<std::byte>(rng.bounded(256));
          }
          pool.write(offset, data);
          fetches += blocks_of(offset, length);
          std::memcpy(model.data() + static_cast<std::size_t>(offset),
                      data.data(), length);
          break;
        }
        case 2: {  // pinned round trip: bytes stable across pressure
          const std::uint64_t block = offset / kBlock;
          const auto pin = pool.pin_block(block);
          ++fetches;
          std::vector<std::byte> snapshot(pin.data().begin(),
                                          pin.data().end());
          // Pressure: touch other blocks while the pin is live. The pool
          // must evict around the pinned frame, never through it.
          for (int pressure = 0; pressure < 3; ++pressure) {
            const std::uint64_t other = rng.bounded(device_bytes / kBlock);
            std::vector<std::byte> scratch(kBlock);
            pool.read(other * kBlock, scratch);
            ++fetches;
          }
          ASSERT_EQ(0, std::memcmp(snapshot.data(), pin.data().data(),
                                   snapshot.size()));
          break;
        }
        default:
          pool.flush();
          break;
      }
      // Invariants hold after every operation, not just at the end.
      ASSERT_EQ(pool.hits() + pool.misses(), fetches);
      ASSERT_LE(pool.resident_blocks(), capacity);
      ASSERT_EQ(pool.resident_blocks(), pool.misses() - pool.evictions());
    }

    // After a final flush the device itself must agree with the model.
    pool.flush();
    std::vector<std::byte> device_bytes_out(
        static_cast<std::size_t>(device_bytes));
    device.read(0, device_bytes_out);
    EXPECT_EQ(0, std::memcmp(device_bytes_out.data(), model.data(),
                             device_bytes_out.size()));
    EXPECT_GT(pool.evictions(), 0u);  // capacity 8 over 40 blocks must evict
  }
}

TEST(BufferPoolModel, AllFramesPinnedRefusesToEvict) {
  io::MemoryBlockDevice device(kBlock);
  fill_device(device, kBlock * 8);
  io::BufferPool pool(device, 2);
  const auto pin0 = pool.pin_block(0);
  const auto pin1 = pool.pin_block(1);
  EXPECT_THROW((void)pool.pin_block(2), std::runtime_error);
  // The pinned frames survived the failed fault-in.
  EXPECT_EQ(pin0.data()[0], pattern_byte(0));
  EXPECT_EQ(pin1.data()[0], pattern_byte(kBlock));
}

// ---------------------------------------------------------------------------
// SharedBufferPool: accounting and semantics (single-threaded model)
// ---------------------------------------------------------------------------

TEST(SharedBufferPoolModel, RandomReadsMatchDeviceAndCounters) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Xoshiro256 rng(seed * 77);
    io::MemoryBlockDevice device(kBlock);
    const std::uint64_t device_bytes = kBlock * 64;
    fill_device(device, device_bytes);

    io::SharedBufferPool pool(device, /*capacity_blocks=*/16);
    io::CacheReadStats stats;
    for (int op = 0; op < 300; ++op) {
      const std::uint64_t offset = rng.bounded(device_bytes - 1);
      const std::size_t length = static_cast<std::size_t>(
          1 + rng.bounded(std::min<std::uint64_t>(device_bytes - offset,
                                                  kBlock * 5)));
      std::vector<std::byte> got(length);
      pool.read(offset, got, stats);
      for (std::size_t i = 0; i < length; ++i) {
        ASSERT_EQ(got[i], pattern_byte(offset + i));
      }

      const io::CacheCounters counters = pool.counters();
      ASSERT_EQ(counters.hits + counters.misses + counters.waits,
                counters.fetches);
      ASSERT_EQ(counters.waits, 0u);  // single-threaded: nobody to wait on
      ASSERT_LE(pool.resident_blocks(), pool.capacity_blocks());
    }
    // Per-call stats are the same accounting from the caller's side.
    const io::CacheCounters counters = pool.counters();
    EXPECT_EQ(stats.hit_blocks, counters.hits);
    EXPECT_EQ(stats.miss_blocks, counters.misses);
    EXPECT_EQ(stats.evictions, counters.evictions);
    EXPECT_GT(counters.evictions, 0u);  // 16 frames over 64 blocks
    // Physical reads happened only for misses: every miss is one block.
    EXPECT_EQ(stats.device_io.blocks_read, counters.misses);
  }
}

TEST(SharedBufferPoolModel, WarmRereadIsAllHitsAndNoDeviceIo) {
  io::MemoryBlockDevice device(kBlock);
  fill_device(device, kBlock * 8);
  io::SharedBufferPool pool(device, 8);

  io::CacheReadStats cold;
  std::vector<std::byte> out(kBlock * 8);
  pool.read(0, out, cold);
  EXPECT_EQ(cold.miss_blocks, 8u);
  EXPECT_EQ(cold.device_io.read_ops, 1u);  // one contiguous run, one read

  io::CacheReadStats warm;
  pool.read(0, out, warm);
  EXPECT_EQ(warm.hit_blocks, 8u);
  EXPECT_EQ(warm.miss_blocks, 0u);
  EXPECT_EQ(warm.device_io.read_ops, 0u);
}

TEST(SharedBufferPoolModel, InvalidateForcesRefetchOfCoveredBlocksOnly) {
  io::MemoryBlockDevice device(kBlock);
  fill_device(device, kBlock * 8);
  io::SharedBufferPool pool(device, 8);

  io::CacheReadStats stats;
  std::vector<std::byte> out(kBlock * 8);
  pool.read(0, out, stats);

  // Drop blocks 2..3 (byte range chosen to straddle both).
  pool.invalidate(2 * kBlock + 7, kBlock + 1);
  EXPECT_EQ(pool.counters().invalidated, 2u);

  io::CacheReadStats after;
  pool.read(0, out, after);
  EXPECT_EQ(after.miss_blocks, 2u);
  EXPECT_EQ(after.hit_blocks, 6u);

  // clear() is a full invalidate.
  pool.clear();
  io::CacheReadStats cleared;
  pool.read(0, out, cleared);
  EXPECT_EQ(cleared.miss_blocks, 8u);
}

TEST(SharedBufferPoolModel, ReadBeyondDeviceEndIsZeroFilled) {
  io::MemoryBlockDevice device(kBlock);
  // 2.5 blocks of data: the final block is short on the device.
  fill_device(device, kBlock * 2 + kBlock / 2);
  io::SharedBufferPool pool(device, 8);

  io::CacheReadStats stats;
  std::vector<std::byte> out(kBlock * 3);
  pool.read(0, out, stats);
  for (std::uint64_t i = 0; i < kBlock * 2 + kBlock / 2; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], pattern_byte(i));
  }
  for (std::uint64_t i = kBlock * 2 + kBlock / 2; i < kBlock * 3; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], std::byte{0});
  }
}

// ---------------------------------------------------------------------------
// SharedBufferPool: concurrency
// ---------------------------------------------------------------------------

// Every block is claimed by exactly one thread under the map mutex, so no
// matter how 8 threads interleave over the same range, each block is read
// from the device exactly once — the single-flight guarantee, observable
// as a hard equality on the device's block counter.
TEST(SharedBufferPoolConcurrency, SingleFlightReadsEachBlockOnce) {
  io::MemoryBlockDevice device(kBlock);
  const std::uint64_t blocks = 64;
  fill_device(device, kBlock * blocks);
  io::SharedBufferPool pool(device, blocks);  // no eviction pressure

  constexpr int kThreads = 8;
  std::vector<io::CacheReadStats> stats(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> out(kBlock * blocks);
      pool.read(0, out, stats[t]);
      for (std::uint64_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(i)], pattern_byte(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(device.stats().blocks_read, blocks);
  const io::CacheCounters counters = pool.counters();
  EXPECT_EQ(counters.hits + counters.misses + counters.waits,
            counters.fetches);
  EXPECT_EQ(counters.fetches, blocks * kThreads);
  EXPECT_EQ(counters.misses, blocks);  // one fault-in per block, total
  io::CacheReadStats merged;
  for (const auto& s : stats) merged.merge(s);
  EXPECT_EQ(merged.device_io.blocks_read, blocks);
}

TEST(SharedBufferPoolConcurrency, RandomConcurrentReadsStayConsistent) {
  io::MemoryBlockDevice device(kBlock);
  const std::uint64_t device_bytes = kBlock * 48;
  fill_device(device, device_bytes);
  io::SharedBufferPool pool(device, 12);  // heavy eviction pressure

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 99);
      io::CacheReadStats stats;
      for (int op = 0; op < 200; ++op) {
        const std::uint64_t offset = rng.bounded(device_bytes - 1);
        const std::size_t length = static_cast<std::size_t>(
            1 + rng.bounded(std::min<std::uint64_t>(device_bytes - offset,
                                                    kBlock * 4)));
        std::vector<std::byte> got(length);
        pool.read(offset, got, stats);
        for (std::size_t i = 0; i < length; ++i) {
          ASSERT_EQ(got[i], pattern_byte(offset + i));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const io::CacheCounters counters = pool.counters();
  EXPECT_EQ(counters.hits + counters.misses + counters.waits,
            counters.fetches);
  EXPECT_LE(pool.resident_blocks(), pool.capacity_blocks());
  // Dedup across threads: physical reads stayed below logical fetches.
  EXPECT_LT(counters.misses, counters.fetches);
}

}  // namespace
}  // namespace oociso
