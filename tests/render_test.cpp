#include <gtest/gtest.h>

#include <fstream>

#include "render/camera.h"
#include "render/framebuffer.h"
#include "render/rasterizer.h"
#include "util/temp_dir.h"

namespace oociso::render {
namespace {

using core::Vec3;

// ---------------------------------------------------------------------------
// Framebuffer
// ---------------------------------------------------------------------------

TEST(FramebufferTest, StartsCleared) {
  Framebuffer fb(8, 8);
  EXPECT_EQ(fb.covered_pixels(), 0u);
  EXPECT_EQ(fb.depth_at(3, 3), Framebuffer::kFarDepth);
  EXPECT_EQ(fb.color_at(3, 3), (Rgb{0, 0, 0}));
}

TEST(FramebufferTest, PlotRespectsDepth) {
  Framebuffer fb(4, 4);
  EXPECT_TRUE(fb.plot(1, 1, 5.0f, {10, 0, 0}));
  EXPECT_FALSE(fb.plot(1, 1, 7.0f, {0, 10, 0}));  // farther: rejected
  EXPECT_TRUE(fb.plot(1, 1, 2.0f, {0, 0, 10}));   // nearer: wins
  EXPECT_EQ(fb.color_at(1, 1), (Rgb{0, 0, 10}));
  EXPECT_FLOAT_EQ(fb.depth_at(1, 1), 2.0f);
  EXPECT_EQ(fb.covered_pixels(), 1u);
}

TEST(FramebufferTest, CompositeKeepsNearer) {
  Framebuffer a(2, 2);
  Framebuffer b(2, 2);
  a.plot(0, 0, 1.0f, {255, 0, 0});
  b.plot(0, 0, 2.0f, {0, 255, 0});
  b.plot(1, 1, 3.0f, {0, 0, 255});
  a.composite_min_depth(b);
  EXPECT_EQ(a.color_at(0, 0), (Rgb{255, 0, 0}));  // a was nearer
  EXPECT_EQ(a.color_at(1, 1), (Rgb{0, 0, 255}));  // only b covered
}

TEST(FramebufferTest, CompositeRejectsSizeMismatch) {
  Framebuffer a(2, 2);
  Framebuffer b(3, 2);
  EXPECT_THROW(a.composite_min_depth(b), std::invalid_argument);
}

TEST(FramebufferTest, RejectsBadDimensions) {
  EXPECT_THROW(Framebuffer(0, 5), std::invalid_argument);
  EXPECT_THROW(Framebuffer(5, -1), std::invalid_argument);
}

TEST(FramebufferTest, PpmOutput) {
  util::TempDir dir;
  Framebuffer fb(3, 2);
  fb.plot(0, 0, 1.0f, {1, 2, 3});
  const auto path = dir.file("img.ppm");
  fb.write_ppm(path);

  std::ifstream in(path, std::ios::binary);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "P6");
  std::getline(in, header);
  EXPECT_EQ(header, "3 2");
  // Header "P6\n3 2\n255\n" is 11 bytes; payload is w*h*3.
  EXPECT_EQ(std::filesystem::file_size(path), 11u + 3u * 2u * 3u);
}

// ---------------------------------------------------------------------------
// Camera
// ---------------------------------------------------------------------------

TEST(CameraTest, CenterProjectsToScreenCenter) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 200, 100);
  const auto projected = camera.project({0, 0, 0});
  ASSERT_TRUE(projected.has_value());
  EXPECT_NEAR(projected->x, 100.0f, 1e-3f);
  EXPECT_NEAR(projected->y, 50.0f, 1e-3f);
  EXPECT_NEAR(projected->depth, 10.0f, 1e-4f);
}

TEST(CameraTest, BehindCameraIsRejected) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 200, 100);
  EXPECT_FALSE(camera.project({0, 0, -20}).has_value());
  EXPECT_FALSE(camera.project({0, 0, -10}).has_value());  // at the eye
}

TEST(CameraTest, DepthOrderingPreserved) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 200, 100);
  const auto near = camera.project({0, 0, -2});
  const auto far = camera.project({0, 0, 5});
  ASSERT_TRUE(near && far);
  EXPECT_LT(near->depth, far->depth);
}

TEST(CameraTest, FramingVolumeSeesAllCorners) {
  const Camera camera = Camera::framing_volume(64, 64, 60, 512, 512);
  for (const Vec3 corner : {Vec3{0, 0, 0}, Vec3{64, 0, 0}, Vec3{0, 64, 0},
                            Vec3{0, 0, 60}, Vec3{64, 64, 60}}) {
    const auto projected = camera.project(corner);
    ASSERT_TRUE(projected.has_value());
    EXPECT_GE(projected->x, 0.0f);
    EXPECT_LT(projected->x, 512.0f);
    EXPECT_GE(projected->y, 0.0f);
    EXPECT_LT(projected->y, 512.0f);
  }
}

// ---------------------------------------------------------------------------
// Rasterizer
// ---------------------------------------------------------------------------

TEST(RasterizerTest, TriangleCoversExpectedPixels) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 100, 100);
  Framebuffer fb(100, 100);
  Rasterizer rasterizer;
  // A big triangle facing the camera around the origin.
  const extract::Triangle triangle{{-3, -3, 0}, {3, -3, 0}, {0, 4, 0}};
  EXPECT_TRUE(rasterizer.draw(triangle, camera, fb));
  EXPECT_GT(fb.covered_pixels(), 100u);
  // The centroid pixel is covered at the right depth.
  EXPECT_NEAR(fb.depth_at(50, 50), 10.0f, 0.01f);
}

TEST(RasterizerTest, WindingDoesNotMatter) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  const extract::Triangle ccw{{-2, -2, 0}, {2, -2, 0}, {0, 3, 0}};
  const extract::Triangle cw{{-2, -2, 0}, {0, 3, 0}, {2, -2, 0}};
  Framebuffer fb_ccw(64, 64);
  Framebuffer fb_cw(64, 64);
  Rasterizer rasterizer;
  rasterizer.draw(ccw, camera, fb_ccw);
  rasterizer.draw(cw, camera, fb_cw);
  EXPECT_EQ(fb_ccw.covered_pixels(), fb_cw.covered_pixels());
}

TEST(RasterizerTest, NearerTriangleOccludes) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  Framebuffer fb(64, 64);
  Rasterizer far_pass({255, 0, 0});
  Rasterizer near_pass({0, 255, 0});
  far_pass.draw({{-2, -2, 2}, {2, -2, 2}, {0, 3, 2}}, camera, fb);
  near_pass.draw({{-2, -2, -2}, {2, -2, -2}, {0, 3, -2}}, camera, fb);
  // Center pixel took the nearer (green-tinted) fragment.
  EXPECT_EQ(fb.color_at(32, 32).r, 0);
  EXPECT_GT(fb.color_at(32, 32).g, 0);
}

TEST(RasterizerTest, OffscreenTriangleIsFree) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  Framebuffer fb(64, 64);
  Rasterizer rasterizer;
  EXPECT_FALSE(
      rasterizer.draw({{100, 100, 0}, {101, 100, 0}, {100, 101, 0}}, camera, fb));
  EXPECT_EQ(fb.covered_pixels(), 0u);
}

TEST(RasterizerTest, BehindCameraIsDropped) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  Framebuffer fb(64, 64);
  Rasterizer rasterizer;
  EXPECT_FALSE(
      rasterizer.draw({{0, 0, -20}, {1, 0, -20}, {0, 1, -20}}, camera, fb));
  EXPECT_EQ(rasterizer.stats().triangles_rasterized, 0u);
  EXPECT_EQ(rasterizer.stats().triangles_submitted, 1u);
}

TEST(RasterizerTest, DegenerateTriangleIsDropped) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  Framebuffer fb(64, 64);
  Rasterizer rasterizer;
  EXPECT_FALSE(rasterizer.draw({{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}, camera, fb));
}

TEST(RasterizerTest, SoupStatsAccumulate) {
  const Camera camera({0, 0, -10}, {0, 0, 0}, {0, 1, 0}, 45.0f, 64, 64);
  Framebuffer fb(64, 64);
  extract::TriangleSoup soup;
  soup.add({{-2, -2, 0}, {2, -2, 0}, {0, 3, 0}});
  soup.add({{0, 0, -20}, {1, 0, -20}, {0, 1, -20}});  // dropped
  Rasterizer rasterizer;
  const RasterStats stats = rasterizer.draw(soup, camera, fb);
  EXPECT_EQ(stats.triangles_submitted, 2u);
  EXPECT_EQ(stats.triangles_rasterized, 1u);
  EXPECT_GT(stats.fragments_written, 0u);
}

}  // namespace
}  // namespace oociso::render
