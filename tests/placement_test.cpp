// K-way replicated placement: the rendezvous ReplicaMap, the per-node
// health tracker, the seeded retry jitter, the die-after-reads fault mode,
// the v3 index round trip, and the two equivalence claims that anchor the
// whole feature — a k=1 build/query is bit-identical to the unreplicated
// path, and a k=2 routed query produces the same mesh as k=1.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "data/rm_generator.h"
#include "index/compact_interval_tree.h"
#include "io/fault_injection.h"
#include "io/io_error.h"
#include "io/memory_block_device.h"
#include "io/retry_policy.h"
#include "metacell/source.h"
#include "parallel/cluster.h"
#include "pipeline/preprocess.h"
#include "pipeline/query_engine.h"
#include "placement/health.h"
#include "placement/replica_map.h"

namespace oociso {
namespace {

// ---------------------------------------------------------------------------
// PlacementConfig / ReplicaMap
// ---------------------------------------------------------------------------

TEST(PlacementConfig, ValidatesItsInvariants) {
  placement::PlacementConfig config;
  config.node_count = 4;
  config.replication = 2;
  EXPECT_NO_THROW(config.validate());

  placement::PlacementConfig bad = config;
  bad.node_count = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.replication = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.replication = 5;  // more copies than nodes
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = config;
  bad.group_bricks = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ReplicaMap, HoldersAreDeterministicAndWellFormed) {
  placement::PlacementConfig config;
  config.node_count = 8;
  config.replication = 3;
  const placement::ReplicaMap map(config);
  const placement::ReplicaMap twin(config);

  for (std::size_t stripe = 0; stripe < 8; ++stripe) {
    for (std::size_t group = 0; group < 32; ++group) {
      const std::vector<std::size_t> holders = map.holders(stripe, group);
      // Same config -> same placement, from any process.
      EXPECT_EQ(holders, twin.holders(stripe, group));
      ASSERT_EQ(holders.size(), config.replication);
      // The primary is the stripe owner; placement never moves it.
      EXPECT_EQ(holders.front(), stripe % config.node_count);
      // Holders are distinct nodes.
      for (std::size_t i = 0; i < holders.size(); ++i) {
        EXPECT_LT(holders[i], config.node_count);
        for (std::size_t j = i + 1; j < holders.size(); ++j) {
          EXPECT_NE(holders[i], holders[j]);
        }
      }
      // replicas() is holders() minus the leading primary.
      const std::vector<std::size_t> replicas = map.replicas(stripe, group);
      ASSERT_EQ(replicas.size(), holders.size() - 1);
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        EXPECT_EQ(replicas[i], holders[i + 1]);
      }
    }
  }
}

TEST(ReplicaMap, SpreadsReplicasAcrossTheCluster) {
  placement::PlacementConfig config;
  config.node_count = 8;
  config.replication = 2;
  const placement::ReplicaMap map(config);

  std::vector<std::size_t> load(config.node_count, 0);
  std::size_t groups = 0;
  for (std::size_t stripe = 0; stripe < 8; ++stripe) {
    for (std::size_t group = 0; group < 64; ++group) {
      for (const std::size_t node : map.replicas(stripe, group)) {
        ++load[node];
      }
      ++groups;
    }
  }
  const std::size_t total = std::accumulate(load.begin(), load.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, groups);  // one replica per group at k=2
  // Rendezvous hashing balances: every node carries some replica load and
  // no node carries more than twice the mean.
  const double mean = static_cast<double>(total) /
                      static_cast<double>(config.node_count);
  for (std::size_t node = 0; node < config.node_count; ++node) {
    EXPECT_GT(load[node], 0u) << "node " << node;
    EXPECT_LT(static_cast<double>(load[node]), 2.0 * mean) << "node " << node;
  }
}

TEST(ReplicaMap, SeedReshufflesReplicaChoice) {
  placement::PlacementConfig config;
  config.node_count = 8;
  config.replication = 2;
  const placement::ReplicaMap a(config);
  config.seed ^= 0xDEADBEEFULL;
  const placement::ReplicaMap b(config);

  std::size_t moved = 0;
  for (std::size_t group = 0; group < 64; ++group) {
    if (a.replicas(0, group) != b.replicas(0, group)) ++moved;
  }
  EXPECT_GT(moved, 0u);
}

// ---------------------------------------------------------------------------
// NodeHealthTracker
// ---------------------------------------------------------------------------

TEST(NodeHealthTracker, TripsAfterConsecutiveFailuresAndProbes) {
  placement::HealthConfig config;
  config.trip_threshold = 3;
  config.probe_interval = 4;
  placement::NodeHealthTracker tracker(4, config);

  // Two failures with a success in between never trip (the streak resets).
  tracker.report_failure(1);
  tracker.report_failure(1);
  tracker.report_success(1);
  tracker.report_failure(1);
  tracker.report_failure(1);
  EXPECT_EQ(tracker.state(1), placement::NodeHealthTracker::State::kHealthy);
  EXPECT_TRUE(tracker.admit(1));

  // The third consecutive failure trips.
  tracker.report_failure(1);
  EXPECT_EQ(tracker.state(1), placement::NodeHealthTracker::State::kTripped);
  EXPECT_EQ(tracker.trips(1), 1u);
  EXPECT_EQ(tracker.tripped_count(), 1u);

  // Tripped: denied except every probe_interval-th consultation.
  EXPECT_FALSE(tracker.admit(1));
  EXPECT_FALSE(tracker.admit(1));
  EXPECT_FALSE(tracker.admit(1));
  EXPECT_TRUE(tracker.admit(1));  // the recovery probe
  EXPECT_FALSE(tracker.admit(1));

  // Other nodes are unaffected.
  EXPECT_TRUE(tracker.admit(0));
  EXPECT_EQ(tracker.state(0), placement::NodeHealthTracker::State::kHealthy);
}

TEST(NodeHealthTracker, SuccessfulProbeRestoresTheNode) {
  placement::HealthConfig config;
  config.trip_threshold = 2;
  config.probe_interval = 3;
  placement::NodeHealthTracker tracker(2, config);

  tracker.report_failure(0);
  tracker.report_failure(0);
  ASSERT_EQ(tracker.state(0), placement::NodeHealthTracker::State::kTripped);

  // The probe read succeeded: healthy again, admits freely.
  tracker.report_success(0);
  EXPECT_EQ(tracker.state(0), placement::NodeHealthTracker::State::kHealthy);
  EXPECT_TRUE(tracker.admit(0));
  EXPECT_TRUE(tracker.admit(0));
  // Trip count is cumulative across recoveries.
  tracker.report_failure(0);
  tracker.report_failure(0);
  EXPECT_EQ(tracker.trips(0), 2u);
}

// ---------------------------------------------------------------------------
// RetryPolicy seeded jitter
// ---------------------------------------------------------------------------

TEST(RetryPolicy, ZeroJitterReproducesTheLadderBitForBit) {
  io::RetryPolicy policy;  // jitter defaults to 0
  for (int retry = 0; retry < 6; ++retry) {
    EXPECT_EQ(policy.backoff_seconds(retry, /*salt=*/0x1234),
              policy.backoff_seconds(retry));
  }
}

TEST(RetryPolicy, JitterIsDeterministicBoundedAndSaltDependent) {
  io::RetryPolicy policy;
  policy.jitter = 0.5;
  policy.jitter_seed = 7;
  bool any_salt_difference = false;
  for (int retry = 0; retry < 4; ++retry) {
    const double base = policy.backoff_seconds(retry);
    const double a = policy.backoff_seconds(retry, /*salt=*/100);
    // Pure function of (seed, salt, retry): replays charge the same value.
    EXPECT_EQ(a, policy.backoff_seconds(retry, /*salt=*/100));
    EXPECT_GE(a, base * (1.0 - policy.jitter));
    EXPECT_LE(a, policy.backoff_max_seconds);
    EXPECT_LT(a, base * (1.0 + policy.jitter) + 1e-12);
    if (a != policy.backoff_seconds(retry, /*salt=*/101)) {
      any_salt_difference = true;
    }
  }
  EXPECT_TRUE(any_salt_difference);
}

// ---------------------------------------------------------------------------
// die_after_reads fault mode
// ---------------------------------------------------------------------------

TEST(FaultInjection, DieAfterReadsKillsTheDevicePermanently) {
  io::MemoryBlockDevice inner;
  std::vector<std::byte> block(inner.block_size(), std::byte{0x5A});
  for (int i = 0; i < 8; ++i) inner.append(block);

  io::FaultConfig config;
  config.die_after_reads = 3;
  io::FaultInjectingBlockDevice device(inner, config);

  std::vector<std::byte> out(inner.block_size());
  // The first three reads are served untouched.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NO_THROW(device.read(static_cast<std::uint64_t>(i) * out.size(),
                                out));
    EXPECT_EQ(out.front(), std::byte{0x5A});
  }
  // Every read from the death point on fails — no recovery, any offset.
  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(device.read(0, out), io::IoError);
  }
  EXPECT_EQ(device.injected().read_failures, 4u);
}

// ---------------------------------------------------------------------------
// Replicated build + query equivalence
// ---------------------------------------------------------------------------

parallel::Cluster make_cluster(std::size_t nodes) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.in_memory = true;
  return parallel::Cluster(config);
}

core::VolumeU8 test_volume() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return data::generate_rm_timestep(config, 200);
}

pipeline::PreprocessResult preprocess_k(const core::VolumeU8& volume,
                                        parallel::Cluster& cluster,
                                        std::size_t replication) {
  const auto source = metacell::make_source(volume, 9);
  pipeline::PreprocessConfig config;
  config.placement.replication = replication;
  return pipeline::preprocess(*source, cluster, config);
}

std::vector<std::byte> device_bytes(io::BlockDevice& device) {
  std::vector<std::byte> bytes(device.size());
  if (!bytes.empty()) device.read_raw(0, bytes);
  return bytes;
}

TEST(ReplicatedBuild, KOneIsBitIdenticalToTheUnreplicatedBuild) {
  const core::VolumeU8 volume = test_volume();
  auto legacy = make_cluster(4);
  auto k1 = make_cluster(4);

  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult reference =
      pipeline::preprocess(*source, legacy);
  const pipeline::PreprocessResult prep = preprocess_k(volume, k1, 1);

  EXPECT_EQ(prep.replica_bytes_written, 0u);
  ASSERT_EQ(prep.trees.size(), reference.trees.size());
  for (std::size_t node = 0; node < prep.trees.size(); ++node) {
    // Same index bytes (the v2 format is retained verbatim at k=1) and the
    // same store bytes on every node.
    EXPECT_EQ(prep.trees[node].to_bytes(), reference.trees[node].to_bytes());
    EXPECT_EQ(device_bytes(k1.disk(node)), device_bytes(legacy.disk(node)));
    EXPECT_FALSE(prep.trees[node].replica_directory().active());
  }
}

TEST(ReplicatedBuild, KTwoAppendsReplicasWithoutMovingPrimaries) {
  const core::VolumeU8 volume = test_volume();
  auto k1 = make_cluster(4);
  auto k2 = make_cluster(4);
  const pipeline::PreprocessResult prep1 = preprocess_k(volume, k1, 1);
  const pipeline::PreprocessResult prep2 = preprocess_k(volume, k2, 2);

  EXPECT_GT(prep2.replica_bytes_written, 0u);
  ASSERT_EQ(prep2.trees.size(), prep1.trees.size());
  for (std::size_t node = 0; node < prep2.trees.size(); ++node) {
    // Replicas append after all primary data: the k=1 store is a strict
    // prefix of the k=2 store on every node.
    const std::vector<std::byte> before = device_bytes(k1.disk(node));
    const std::vector<std::byte> after = device_bytes(k2.disk(node));
    ASSERT_GE(after.size(), before.size());
    EXPECT_EQ(std::memcmp(after.data(), before.data(), before.size()), 0)
        << "node " << node;

    const index::ReplicaDirectory directory =
        prep2.trees[node].replica_directory();
    EXPECT_TRUE(directory.active());
    for (const index::ReplicaGroup& group : directory.groups) {
      EXPECT_LT(group.begin, group.end);
      ASSERT_EQ(group.targets.size(), 1u);  // k=2: one replica per group
      EXPECT_NE(group.targets[0].node, static_cast<std::uint32_t>(node));
      // Every replica copy lives past the holder's primary region (the k=1
      // store size, since the primary layout is placement-independent).
      EXPECT_GE(group.targets[0].base, k1.disk(group.targets[0].node).size());
    }
  }
}

TEST(ReplicatedBuild, VThreeIndexRoundTripsThroughBytes) {
  const core::VolumeU8 volume = test_volume();
  auto cluster = make_cluster(4);
  const pipeline::PreprocessResult prep = preprocess_k(volume, cluster, 2);

  for (const index::CompactIntervalTree& tree : prep.trees) {
    const std::vector<std::byte> bytes = tree.to_bytes();
    const index::CompactIntervalTree loaded =
        index::CompactIntervalTree::from_bytes(bytes);
    EXPECT_EQ(loaded.replication(), tree.replication());
    ASSERT_EQ(loaded.replica_groups().size(), tree.replica_groups().size());
    for (std::size_t g = 0; g < tree.replica_groups().size(); ++g) {
      const index::ReplicaGroup& a = tree.replica_groups()[g];
      const index::ReplicaGroup& b = loaded.replica_groups()[g];
      EXPECT_EQ(a.begin, b.begin);
      EXPECT_EQ(a.end, b.end);
      ASSERT_EQ(a.targets.size(), b.targets.size());
      for (std::size_t t = 0; t < a.targets.size(); ++t) {
        EXPECT_EQ(a.targets[t].node, b.targets[t].node);
        EXPECT_EQ(a.targets[t].base, b.targets[t].base);
      }
    }
    // And the round trip never perturbs the rest of the index.
    EXPECT_EQ(loaded.to_bytes(), bytes);
  }
}

bool same_triangles(const extract::TriangleSoup& a,
                    const extract::TriangleSoup& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.triangles().data(), b.triangles().data(),
                      a.size() * sizeof(extract::Triangle)) == 0);
}

TEST(ReplicatedQuery, RoutedKTwoMatchesKOneMeshes) {
  const core::VolumeU8 volume = test_volume();
  auto k1 = make_cluster(4);
  auto k2 = make_cluster(4);
  const pipeline::PreprocessResult prep1 = preprocess_k(volume, k1, 1);
  const pipeline::PreprocessResult prep2 = preprocess_k(volume, k2, 2);

  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;

  pipeline::QueryEngine engine1(k1, prep1);
  pipeline::QueryEngine engine2(k2, prep2);
  for (const float isovalue : {100.0f, 128.0f, 160.0f}) {
    const pipeline::QueryReport r1 = engine1.run(isovalue, options);
    const pipeline::QueryReport r2 = engine2.run(isovalue, options);
    // Routing re-targets device offsets but never changes item order or
    // byte counts, so the meshes agree exactly.
    EXPECT_TRUE(same_triangles(*r1.triangles_out, *r2.triangles_out))
        << "isovalue " << isovalue;
    EXPECT_FALSE(r2.degraded);
    // Healthy routing is not a fault: load may spread, but nothing hedges.
    EXPECT_EQ(r2.total_retrieval_faults().hedged_reads, 0u);
    // served_io accounts every byte exactly once across the nodes.
    io::IoStats routed_total;
    io::IoStats direct_total;
    for (std::size_t node = 0; node < 4; ++node) {
      routed_total += r2.served_io(node);
      direct_total += r2.nodes[node].io;
    }
    EXPECT_EQ(routed_total.read_ops, direct_total.read_ops);
    EXPECT_EQ(routed_total.bytes_read, direct_total.bytes_read);
  }
}

TEST(ReplicatedQuery, KOneReportIsBitIdenticalToUnreplicated) {
  const core::VolumeU8 volume = test_volume();
  auto legacy = make_cluster(4);
  auto k1 = make_cluster(4);
  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult reference =
      pipeline::preprocess(*source, legacy);
  const pipeline::PreprocessResult prep = preprocess_k(volume, k1, 1);

  pipeline::QueryOptions options;
  options.render = false;
  options.keep_triangles = true;
  pipeline::QueryEngine ref_engine(legacy, reference);
  pipeline::QueryEngine engine(k1, prep);
  for (const float isovalue : {110.0f, 150.0f}) {
    const pipeline::QueryReport expected = ref_engine.run(isovalue, options);
    const pipeline::QueryReport actual = engine.run(isovalue, options);
    EXPECT_TRUE(same_triangles(*expected.triangles_out,
                               *actual.triangles_out));
    ASSERT_EQ(actual.nodes.size(), expected.nodes.size());
    for (std::size_t node = 0; node < actual.nodes.size(); ++node) {
      // IoStats bit-identical: same ops, bytes, seeks — routing is inert.
      EXPECT_EQ(actual.nodes[node].io.read_ops,
                expected.nodes[node].io.read_ops);
      EXPECT_EQ(actual.nodes[node].io.bytes_read,
                expected.nodes[node].io.bytes_read);
      EXPECT_EQ(actual.nodes[node].io.seeks, expected.nodes[node].io.seeks);
      EXPECT_TRUE(actual.nodes[node].routed.empty());
    }
  }
}

}  // namespace
}  // namespace oociso
