#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/rm_generator.h"
#include "metacell/source.h"
#include "pipeline/bundle.h"
#include "pipeline/query_engine.h"
#include "util/temp_dir.h"

namespace oociso::pipeline {
namespace {

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return config;
}

TEST(Bundle, PreprocessSaveReopenLoadQuery) {
  util::TempDir storage("oociso-bundle");
  const auto volume = data::generate_rm_timestep(small_rm(), 210);

  // Session 1: preprocess, query, save.
  std::uint64_t reference_triangles = 0;
  std::uint64_t reference_amc = 0;
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    parallel::Cluster cluster(config);
    const auto source = metacell::make_source(volume, 9);
    const PreprocessResult prep = preprocess(*source, cluster);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    reference_triangles = report.total_triangles();
    reference_amc = report.total_active_metacells();
    ASSERT_GT(reference_triangles, 0u);
    save_bundle(prep, storage.path());
  }

  // Session 2: reattach to the same storage, load, query identically.
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    config.open_existing = true;
    parallel::Cluster cluster(config);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_GT(cluster.disk(i).size(), 0u) << "brick file lost";
    }
    const PreprocessResult prep = load_bundle(storage.path());
    ASSERT_EQ(prep.trees.size(), 3u);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    EXPECT_EQ(report.total_triangles(), reference_triangles);
    EXPECT_EQ(report.total_active_metacells(), reference_amc);
  }
}

TEST(Bundle, PreservesMetadata) {
  util::TempDir storage("oociso-bundle-meta");
  const auto volume = data::generate_rm_timestep(small_rm(), 100);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage.path();
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  save_bundle(prep, storage.path());

  const PreprocessResult loaded = load_bundle(storage.path());
  EXPECT_EQ(loaded.kind, prep.kind);
  EXPECT_EQ(loaded.geometry.volume_dims(), prep.geometry.volume_dims());
  EXPECT_EQ(loaded.geometry.samples_per_side(), 9);
  EXPECT_EQ(loaded.total_metacells, prep.total_metacells);
  EXPECT_EQ(loaded.kept_metacells, prep.kept_metacells);
  EXPECT_EQ(loaded.bricks, prep.bricks);
  EXPECT_EQ(loaded.bytes_written, prep.bytes_written);
  EXPECT_EQ(loaded.raw_bytes, prep.raw_bytes);
  EXPECT_EQ(loaded.index_bytes(), prep.index_bytes());
}

TEST(Bundle, RejectsMissingAndCorrupt) {
  util::TempDir dir("oociso-bundle-bad");
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
  std::ofstream(dir.file("index.oocb"), std::ios::binary) << "garbage";
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
}

// Saves a minimal bundle into `storage` and returns the manifest path.
std::filesystem::path save_small_bundle(util::TempDir& storage) {
  const auto volume = data::generate_rm_timestep(small_rm(), 100);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage.path();
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  save_bundle(preprocess(*source, cluster), storage.path());
  return storage.path() / "index.oocb";
}

void flip_byte(const std::filesystem::path& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  byte = static_cast<char>(byte ^ 0x20);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(byte);
}

TEST(Bundle, FlippedPayloadByteIsRejectedByHeaderCrc) {
  util::TempDir storage("oociso-bundle-rot");
  const auto manifest = save_small_bundle(storage);

  // One flipped bit/byte anywhere in the payload must trip the header CRC
  // before any payload field is trusted. Probe a few spots: right after the
  // 20-byte header, mid-file, and the last byte.
  const auto size = std::filesystem::file_size(manifest);
  for (const std::uint64_t offset :
       {std::uint64_t{20}, size / 2, size - 1}) {
    flip_byte(manifest, offset);
    try {
      (void)load_bundle(storage.path());
      FAIL() << "accepted a bundle with a flipped byte at " << offset;
    } catch (const std::runtime_error& error) {
      const std::string message = error.what();
      EXPECT_NE(message.find("payload checksum mismatch"), std::string::npos)
          << message;
      EXPECT_NE(message.find("byte offset"), std::string::npos) << message;
    }
    flip_byte(manifest, offset);  // restore
  }
  EXPECT_NO_THROW((void)load_bundle(storage.path()));  // restored == valid
}

TEST(Bundle, TruncatedManifestReportsTheLengthMismatch) {
  util::TempDir storage("oociso-bundle-trunc");
  const auto manifest = save_small_bundle(storage);
  const auto size = std::filesystem::file_size(manifest);
  std::filesystem::resize_file(manifest, size - 10);
  try {
    (void)load_bundle(storage.path());
    FAIL() << "accepted a truncated bundle";
  } catch (const std::runtime_error& error) {
    // The header's payload length no longer matches the bytes that follow;
    // the error names both counts and the offending offset.
    const std::string message = error.what();
    EXPECT_NE(message.find("payload bytes but"), std::string::npos) << message;
    EXPECT_NE(message.find("byte offset"), std::string::npos) << message;
  }
}

TEST(Bundle, ReattachWithMissingBrickStoreNamesTheNode) {
  util::TempDir storage("oociso-bundle-lost");
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    parallel::Cluster cluster(config);
    const auto source = metacell::make_source(volume, 9);
    save_bundle(preprocess(*source, cluster), storage.path());
  }

  // A half-copied bundle: node 1's brick file vanished between sessions.
  const auto lost = storage.path() / "node1" / "bricks.dat";
  ASSERT_TRUE(std::filesystem::remove(lost));

  parallel::ClusterConfig config;
  config.node_count = 3;
  config.storage_dir = storage.path();
  config.open_existing = true;
  try {
    parallel::Cluster cluster(config);
    FAIL() << "expected reattach to a gutted store to throw";
  } catch (const std::runtime_error& error) {
    // Not the raw ENOENT from ::open: the message names the node and the
    // path the reattach expected.
    const std::string message = error.what();
    EXPECT_NE(message.find("node 1"), std::string::npos) << message;
    EXPECT_NE(message.find(lost.string()), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace oociso::pipeline
