#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "data/rm_generator.h"
#include "metacell/source.h"
#include "pipeline/bundle.h"
#include "pipeline/query_engine.h"
#include "util/temp_dir.h"

namespace oociso::pipeline {
namespace {

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return config;
}

TEST(Bundle, PreprocessSaveReopenLoadQuery) {
  util::TempDir storage("oociso-bundle");
  const auto volume = data::generate_rm_timestep(small_rm(), 210);

  // Session 1: preprocess, query, save.
  std::uint64_t reference_triangles = 0;
  std::uint64_t reference_amc = 0;
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    parallel::Cluster cluster(config);
    const auto source = metacell::make_source(volume, 9);
    const PreprocessResult prep = preprocess(*source, cluster);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    reference_triangles = report.total_triangles();
    reference_amc = report.total_active_metacells();
    ASSERT_GT(reference_triangles, 0u);
    save_bundle(prep, storage.path());
  }

  // Session 2: reattach to the same storage, load, query identically.
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    config.open_existing = true;
    parallel::Cluster cluster(config);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_GT(cluster.disk(i).size(), 0u) << "brick file lost";
    }
    const PreprocessResult prep = load_bundle(storage.path());
    ASSERT_EQ(prep.trees.size(), 3u);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    EXPECT_EQ(report.total_triangles(), reference_triangles);
    EXPECT_EQ(report.total_active_metacells(), reference_amc);
  }
}

TEST(Bundle, PreservesMetadata) {
  util::TempDir storage("oociso-bundle-meta");
  const auto volume = data::generate_rm_timestep(small_rm(), 100);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage.path();
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  save_bundle(prep, storage.path());

  const PreprocessResult loaded = load_bundle(storage.path());
  EXPECT_EQ(loaded.kind, prep.kind);
  EXPECT_EQ(loaded.geometry.volume_dims(), prep.geometry.volume_dims());
  EXPECT_EQ(loaded.geometry.samples_per_side(), 9);
  EXPECT_EQ(loaded.total_metacells, prep.total_metacells);
  EXPECT_EQ(loaded.kept_metacells, prep.kept_metacells);
  EXPECT_EQ(loaded.bricks, prep.bricks);
  EXPECT_EQ(loaded.bytes_written, prep.bytes_written);
  EXPECT_EQ(loaded.raw_bytes, prep.raw_bytes);
  EXPECT_EQ(loaded.index_bytes(), prep.index_bytes());
}

TEST(Bundle, RejectsMissingAndCorrupt) {
  util::TempDir dir("oociso-bundle-bad");
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
  std::ofstream(dir.file("index.oocb"), std::ios::binary) << "garbage";
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
}

TEST(Bundle, ReattachWithMissingBrickStoreNamesTheNode) {
  util::TempDir storage("oociso-bundle-lost");
  const auto volume = data::generate_rm_timestep(small_rm(), 150);
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    parallel::Cluster cluster(config);
    const auto source = metacell::make_source(volume, 9);
    save_bundle(preprocess(*source, cluster), storage.path());
  }

  // A half-copied bundle: node 1's brick file vanished between sessions.
  const auto lost = storage.path() / "node1" / "bricks.dat";
  ASSERT_TRUE(std::filesystem::remove(lost));

  parallel::ClusterConfig config;
  config.node_count = 3;
  config.storage_dir = storage.path();
  config.open_existing = true;
  try {
    parallel::Cluster cluster(config);
    FAIL() << "expected reattach to a gutted store to throw";
  } catch (const std::runtime_error& error) {
    // Not the raw ENOENT from ::open: the message names the node and the
    // path the reattach expected.
    const std::string message = error.what();
    EXPECT_NE(message.find("node 1"), std::string::npos) << message;
    EXPECT_NE(message.find(lost.string()), std::string::npos) << message;
  }
}

}  // namespace
}  // namespace oociso::pipeline
