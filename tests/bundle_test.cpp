#include <gtest/gtest.h>

#include <fstream>

#include "data/rm_generator.h"
#include "metacell/source.h"
#include "pipeline/bundle.h"
#include "pipeline/query_engine.h"
#include "util/temp_dir.h"

namespace oociso::pipeline {
namespace {

data::RmConfig small_rm() {
  data::RmConfig config;
  config.dims = {40, 40, 36};
  return config;
}

TEST(Bundle, PreprocessSaveReopenLoadQuery) {
  util::TempDir storage("oociso-bundle");
  const auto volume = data::generate_rm_timestep(small_rm(), 210);

  // Session 1: preprocess, query, save.
  std::uint64_t reference_triangles = 0;
  std::uint64_t reference_amc = 0;
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    parallel::Cluster cluster(config);
    const auto source = metacell::make_source(volume, 9);
    const PreprocessResult prep = preprocess(*source, cluster);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    reference_triangles = report.total_triangles();
    reference_amc = report.total_active_metacells();
    ASSERT_GT(reference_triangles, 0u);
    save_bundle(prep, storage.path());
  }

  // Session 2: reattach to the same storage, load, query identically.
  {
    parallel::ClusterConfig config;
    config.node_count = 3;
    config.storage_dir = storage.path();
    config.open_existing = true;
    parallel::Cluster cluster(config);
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_GT(cluster.disk(i).size(), 0u) << "brick file lost";
    }
    const PreprocessResult prep = load_bundle(storage.path());
    ASSERT_EQ(prep.trees.size(), 3u);
    QueryEngine engine(cluster, prep);
    QueryOptions options;
    options.render = false;
    const QueryReport report = engine.run(128.0f, options);
    EXPECT_EQ(report.total_triangles(), reference_triangles);
    EXPECT_EQ(report.total_active_metacells(), reference_amc);
  }
}

TEST(Bundle, PreservesMetadata) {
  util::TempDir storage("oociso-bundle-meta");
  const auto volume = data::generate_rm_timestep(small_rm(), 100);
  parallel::ClusterConfig config;
  config.node_count = 2;
  config.storage_dir = storage.path();
  parallel::Cluster cluster(config);
  const auto source = metacell::make_source(volume, 9);
  const PreprocessResult prep = preprocess(*source, cluster);
  save_bundle(prep, storage.path());

  const PreprocessResult loaded = load_bundle(storage.path());
  EXPECT_EQ(loaded.kind, prep.kind);
  EXPECT_EQ(loaded.geometry.volume_dims(), prep.geometry.volume_dims());
  EXPECT_EQ(loaded.geometry.samples_per_side(), 9);
  EXPECT_EQ(loaded.total_metacells, prep.total_metacells);
  EXPECT_EQ(loaded.kept_metacells, prep.kept_metacells);
  EXPECT_EQ(loaded.bricks, prep.bricks);
  EXPECT_EQ(loaded.bytes_written, prep.bytes_written);
  EXPECT_EQ(loaded.raw_bytes, prep.raw_bytes);
  EXPECT_EQ(loaded.index_bytes(), prep.index_bytes());
}

TEST(Bundle, RejectsMissingAndCorrupt) {
  util::TempDir dir("oociso-bundle-bad");
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
  std::ofstream(dir.file("index.oocb"), std::ios::binary) << "garbage";
  EXPECT_THROW(load_bundle(dir.path()), std::runtime_error);
}

}  // namespace
}  // namespace oociso::pipeline
