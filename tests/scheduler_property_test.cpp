// Property/fuzz suite for index::schedule_plan: randomized dense brick
// layouts, random planned subsets (full and prefix scans in shuffled plan
// order), and randomized packing parameters. Every instance must satisfy
// the scheduler's contract:
//   * the schedule is offset-monotone (one forward disk pass),
//   * every planned full scan's records are covered exactly once,
//   * reads never overlap and never bridge a byte gap beyond max_gap_bytes,
//   * with coalesce = false the schedule IS the per-brick plan-order
//     baseline.
// Carries the ctest label `property` alongside the pipeline property suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "index/compact_interval_tree.h"
#include "index/plan_scheduler.h"
#include "util/rng.h"

namespace oociso::index {
namespace {

struct RandomCase {
  std::vector<BrickEntry> bricks;        ///< densely packed layout
  std::vector<std::uint32_t> crcs;       ///< one chunk CRC array for all
  QueryPlan plan;                        ///< shuffled subset of the bricks
  std::vector<std::int32_t> plan_brick;  ///< scan index -> brick index
  ScheduleParams params;
};

/// Builds a dense random brick layout, plans a random subset of it in
/// shuffled (value-ish) order, and draws random packing parameters.
RandomCase make_case(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  RandomCase c;

  c.params.record_size = 8u << rng.bounded(3);          // 8, 16, 32
  c.params.chunk_records = std::size_t{1} << rng.bounded(3);  // 1, 2, 4
  const std::size_t brick_count = 2 + rng.bounded(30);

  // Dense layout: brick i starts where brick i-1 ends. Chunk CRCs are
  // dummies — the scheduler only routes them, it never checks them.
  std::uint64_t offset = 0;
  std::uint32_t crc_begin = 0;
  for (std::size_t i = 0; i < brick_count; ++i) {
    const std::uint32_t records = 1 + rng.bounded(12);
    const auto chunks = static_cast<std::uint32_t>(
        (records + c.params.chunk_records - 1) / c.params.chunk_records);
    c.bricks.push_back({.vmax = 0,
                        .min_vmin = 0,
                        .offset = offset,
                        .count = records,
                        .crc_begin = crc_begin});
    offset += records * c.params.record_size;
    crc_begin += chunks;
  }
  c.crcs.assign(crc_begin, 0xABCD1234u);

  // Plan a random subset, then shuffle into "value order" (plan order and
  // disk order deliberately disagree). ~1 in 5 planned scans is a Case-2
  // prefix scan.
  c.plan.crc_chunk_records = static_cast<std::uint32_t>(c.params.chunk_records);
  std::vector<std::int32_t> chosen;
  for (std::size_t i = 0; i < brick_count; ++i) {
    if (rng.bounded(3) != 0) chosen.push_back(static_cast<std::int32_t>(i));
  }
  if (chosen.empty()) chosen.push_back(0);
  for (std::size_t i = chosen.size(); i > 1; --i) {
    std::swap(chosen[i - 1], chosen[rng.bounded(static_cast<std::uint32_t>(i))]);
  }
  for (const std::int32_t brick_index : chosen) {
    const BrickEntry& brick = c.bricks[static_cast<std::size_t>(brick_index)];
    BrickScan scan;
    scan.offset = brick.offset;
    scan.metacell_count = brick.count;
    scan.full = rng.bounded(5) != 0;
    const auto chunks = static_cast<std::size_t>(
        (brick.count + c.params.chunk_records - 1) / c.params.chunk_records);
    scan.chunk_crcs = {c.crcs.data() + brick.crc_begin, chunks};
    c.plan.scans.push_back(scan);
    c.plan_brick.push_back(brick_index);
  }

  c.params.max_read_records =
      std::max<std::size_t>(c.params.chunk_records, 1 + rng.bounded(40));
  c.params.max_gap_bytes = rng.bounded(2) == 0
                               ? 0
                               : std::uint64_t{rng.bounded(512)};
  c.params.coalesce = true;
  c.params.require_crc_cover = rng.bounded(2) == 0;
  return c;
}

/// Disk position of a scheduled item (prefix items sit at their scan's
/// brick offset; the scheduler merges them into the sweep there).
std::uint64_t item_offset(const RandomCase& c, const ScheduledItem& item) {
  if (item.is_prefix()) {
    return c.plan.scans[static_cast<std::size_t>(item.prefix_scan)].offset;
  }
  return item.read.offset;
}

/// Asserts the structural invariants of one scheduled plan; returns the
/// per-scan covered-record tally for the coverage check.
std::map<std::int32_t, std::uint64_t> check_schedule(const RandomCase& c,
                                                     const ScheduledPlan& s) {
  std::map<std::int32_t, std::uint64_t> covered;  // scan index -> records
  std::uint64_t bridged = 0;
  std::uint64_t last_read_end = 0;
  bool have_last_end = false;

  for (const ScheduledItem& item : s.items) {
    if (item.is_prefix()) continue;
    const ScheduledRead& read = item.read;
    EXPECT_GT(read.record_count, 0u);
    EXPECT_LE(read.record_count, c.params.max_read_records);

    // Reads never overlap on disk (offset-monotone + disjoint).
    if (have_last_end) EXPECT_GE(read.offset, last_read_end);
    last_read_end = read.offset + read.record_count * c.params.record_size;
    have_last_end = true;

    // Slices tile the read densely, in order, with no byte unaccounted.
    std::uint64_t tiled = 0;
    for (const ReadSlice& slice : read.slices) {
      EXPECT_GT(slice.record_count, 0u);
      if (slice.scan_index >= 0) {
        const BrickScan& scan =
            c.plan.scans[static_cast<std::size_t>(slice.scan_index)];
        EXPECT_TRUE(scan.full);  // prefix scans are never packed into reads
        EXPECT_LE(slice.first_record + slice.record_count,
                  scan.metacell_count);
        // The slice's absolute position matches its brick's.
        EXPECT_EQ(read.offset + tiled * c.params.record_size,
                  scan.offset + slice.first_record * c.params.record_size);
        covered[slice.scan_index] += slice.record_count;
      } else {
        // Gap filler: counted bytes must match the diagnostics, and when
        // CRC cover is required the slice must actually be coverable.
        bridged += slice.record_count * c.params.record_size;
        if (c.params.require_crc_cover) {
          EXPECT_FALSE(slice.chunk_crcs.empty());
        }
      }
      tiled += slice.record_count;
    }
    EXPECT_EQ(tiled, read.record_count);
  }
  EXPECT_EQ(bridged, s.bridged_gap_bytes);
  return covered;
}

TEST(SchedulerProperty, RandomizedPlansSatisfyTheContract) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RandomCase c = make_case(seed);
    const BrickDirectory directory{c.bricks, c.crcs};
    const ScheduledPlan schedule =
        schedule_plan(c.plan, c.params, directory);

    // Offset-monotone: one forward pass over the disk, prefix items merged
    // at their disk position.
    std::uint64_t last = 0;
    for (const ScheduledItem& item : schedule.items) {
      const std::uint64_t at = item_offset(c, item);
      EXPECT_GE(at, last);
      last = at;
    }

    const auto covered = check_schedule(c, schedule);

    // Full coverage, exactly once: every planned full scan's records are
    // delivered; every prefix scan appears as exactly one prefix item.
    std::map<std::int32_t, std::size_t> prefix_items;
    for (const ScheduledItem& item : schedule.items) {
      if (item.is_prefix()) ++prefix_items[item.prefix_scan];
    }
    for (std::size_t i = 0; i < c.plan.scans.size(); ++i) {
      const auto index = static_cast<std::int32_t>(i);
      if (c.plan.scans[i].full) {
        const auto it = covered.find(index);
        ASSERT_NE(it, covered.end()) << "scan " << i << " never scheduled";
        EXPECT_EQ(it->second, c.plan.scans[i].metacell_count);
        EXPECT_EQ(prefix_items.count(index), 0u);
      } else {
        EXPECT_EQ(prefix_items[index], 1u);
        EXPECT_EQ(covered.count(index), 0u);
      }
    }

    // No gap beyond the budget: within a read, the byte distance between
    // the end of one planned slice and the start of the next planned slice
    // is at most max_gap_bytes.
    for (const ScheduledItem& item : schedule.items) {
      if (item.is_prefix()) continue;
      std::uint64_t gap_run = 0;
      bool seen_planned = false;
      for (const ReadSlice& slice : item.read.slices) {
        if (slice.scan_index < 0) {
          gap_run += slice.record_count * c.params.record_size;
        } else {
          if (seen_planned) EXPECT_LE(gap_run, c.params.max_gap_bytes);
          gap_run = 0;
          seen_planned = true;
        }
      }
    }
  }
}

TEST(SchedulerProperty, CoalesceOffEqualsPerBrickBaseline) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RandomCase c = make_case(seed);
    c.params.coalesce = false;
    const BrickDirectory directory{c.bricks, c.crcs};
    const ScheduledPlan schedule =
        schedule_plan(c.plan, c.params, directory);

    // Legacy mode: one item per scan, in plan order; full scans become
    // whole-brick read sequences at the brick's own offset, prefix scans
    // stay prefix items. Nothing is coalesced, nothing is bridged.
    EXPECT_EQ(schedule.coalesced_scans, 0u);
    EXPECT_EQ(schedule.bridged_gap_bytes, 0u);

    std::size_t item_index = 0;
    for (std::size_t i = 0; i < c.plan.scans.size(); ++i) {
      const BrickScan& scan = c.plan.scans[i];
      ASSERT_LT(item_index, schedule.items.size());
      if (!scan.full) {
        const ScheduledItem& item = schedule.items[item_index++];
        ASSERT_TRUE(item.is_prefix());
        EXPECT_EQ(item.prefix_scan, static_cast<std::int32_t>(i));
        continue;
      }
      // A full scan may split into several reads at max_read_records, but
      // they are consecutive items covering exactly this brick, in order.
      std::uint64_t next_record = 0;
      while (next_record < scan.metacell_count) {
        ASSERT_LT(item_index, schedule.items.size());
        const ScheduledItem& item = schedule.items[item_index++];
        ASSERT_FALSE(item.is_prefix());
        EXPECT_EQ(item.read.offset,
                  scan.offset + next_record * c.params.record_size);
        for (const ReadSlice& slice : item.read.slices) {
          EXPECT_EQ(slice.scan_index, static_cast<std::int32_t>(i));
          EXPECT_EQ(slice.first_record, next_record);
          next_record += slice.record_count;
        }
      }
      EXPECT_EQ(next_record, scan.metacell_count);
    }
    EXPECT_EQ(item_index, schedule.items.size());
  }
}

}  // namespace
}  // namespace oociso
