#include <gtest/gtest.h>

#include "core/grid.h"
#include "core/interval.h"
#include "core/vec3.h"
#include "core/volume.h"

namespace oociso::core {
namespace {

// ---------------------------------------------------------------------------
// GridDims / Coord3
// ---------------------------------------------------------------------------

TEST(Grid, LinearIsXFastest) {
  const GridDims dims{4, 3, 2};
  EXPECT_EQ(dims.linear({0, 0, 0}), 0u);
  EXPECT_EQ(dims.linear({1, 0, 0}), 1u);
  EXPECT_EQ(dims.linear({0, 1, 0}), 4u);
  EXPECT_EQ(dims.linear({0, 0, 1}), 12u);
  EXPECT_EQ(dims.linear({3, 2, 1}), dims.count() - 1);
}

TEST(Grid, CoordRoundTrip) {
  const GridDims dims{5, 7, 3};
  for (std::uint64_t i = 0; i < dims.count(); ++i) {
    EXPECT_EQ(dims.linear(dims.coord(i)), i);
  }
}

TEST(Grid, Contains) {
  const GridDims dims{2, 2, 2};
  EXPECT_TRUE(dims.contains({0, 0, 0}));
  EXPECT_TRUE(dims.contains({1, 1, 1}));
  EXPECT_FALSE(dims.contains({2, 0, 0}));
  EXPECT_FALSE(dims.contains({0, -1, 0}));
}

TEST(Grid, CellDims) {
  EXPECT_EQ((GridDims{9, 9, 9}.cell_dims()), (GridDims{8, 8, 8}));
  EXPECT_EQ((GridDims{1, 5, 5}.cell_dims()).nx, 0);
}

TEST(Grid, MetacellDimsMatchPaper) {
  // 2048x2048x1920 samples with 8-cell metacells -> 256x256x240 metacells.
  const GridDims rm{2048, 2048, 1920};
  EXPECT_EQ(rm.metacell_dims(8), (GridDims{256, 256, 240}));
}

TEST(Grid, MetacellDimsCeil) {
  // 10 samples = 9 cells; 9/4 rounds up to 3 metacells.
  const GridDims dims{10, 10, 10};
  EXPECT_EQ(dims.metacell_dims(4), (GridDims{3, 3, 3}));
}

// ---------------------------------------------------------------------------
// ValueInterval
// ---------------------------------------------------------------------------

TEST(Interval, StabsIsClosed) {
  const ValueInterval iv{10, 20};
  EXPECT_TRUE(iv.stabs(10));
  EXPECT_TRUE(iv.stabs(15));
  EXPECT_TRUE(iv.stabs(20));
  EXPECT_FALSE(iv.stabs(9.99f));
  EXPECT_FALSE(iv.stabs(20.01f));
}

TEST(Interval, DegenerateAndHull) {
  EXPECT_TRUE((ValueInterval{5, 5}).degenerate());
  EXPECT_FALSE((ValueInterval{5, 6}).degenerate());
  const ValueInterval hull = ValueInterval{1, 4}.hull({3, 9});
  EXPECT_EQ(hull, (ValueInterval{1, 9}));
}

// ---------------------------------------------------------------------------
// Vec3
// ---------------------------------------------------------------------------

TEST(Vec3Math, DotCrossLength) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_FLOAT_EQ((Vec3{3, 4, 0}).length(), 5.0f);
}

TEST(Vec3Math, NormalizedHandlesZero) {
  EXPECT_EQ((Vec3{}).normalized(), (Vec3{}));
  const Vec3 n = Vec3{0, 0, 2}.normalized();
  EXPECT_FLOAT_EQ(n.length(), 1.0f);
}

TEST(Vec3Math, Lerp) {
  const Vec3 mid = lerp({0, 0, 0}, {2, 4, 6}, 0.5f);
  EXPECT_EQ(mid, (Vec3{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Volume
// ---------------------------------------------------------------------------

TEST(VolumeTest, FillAndAccess) {
  VolumeU8 v({3, 3, 3}, std::uint8_t{7});
  EXPECT_EQ(v.at(1, 1, 1), 7);
  v.at(2, 0, 1) = 42;
  EXPECT_EQ(v.at({2, 0, 1}), 42);
}

TEST(VolumeTest, RejectsBadDims) {
  EXPECT_THROW(VolumeU8({0, 3, 3}), std::invalid_argument);
  EXPECT_THROW(VolumeU8({3, 3, 3}, std::vector<std::uint8_t>(5)),
               std::invalid_argument);
}

TEST(VolumeTest, ValueRange) {
  VolumeU8 v({2, 2, 2}, std::uint8_t{9});
  v.at(0, 0, 0) = 1;
  v.at(1, 1, 1) = 200;
  EXPECT_EQ(v.value_range(), (ValueInterval{1, 200}));
}

TEST(VolumeTest, ClampedSampling) {
  VolumeU8 v({2, 2, 2}, std::uint8_t{0});
  v.at(1, 1, 1) = 50;
  EXPECT_EQ(v.at_clamped({5, 5, 5}), 50);
  EXPECT_EQ(v.at_clamped({-1, -1, -1}), 0);
}

TEST(VolumeTest, Subvolume) {
  VolumeU8 v({4, 4, 4});
  for (std::uint64_t i = 0; i < v.sample_count(); ++i) {
    v.samples()[i] = static_cast<std::uint8_t>(i);
  }
  const VolumeU8 sub = v.subvolume({1, 1, 1}, {2, 2, 2});
  EXPECT_EQ(sub.dims(), (GridDims{2, 2, 2}));
  for (std::int32_t z = 0; z < 2; ++z) {
    for (std::int32_t y = 0; y < 2; ++y) {
      for (std::int32_t x = 0; x < 2; ++x) {
        EXPECT_EQ(sub.at(x, y, z), v.at(x + 1, y + 1, z + 1));
      }
    }
  }
}

TEST(ScalarKindTest, SizesAndNames) {
  EXPECT_EQ(scalar_size(ScalarKind::kU8), 1u);
  EXPECT_EQ(scalar_size(ScalarKind::kU16), 2u);
  EXPECT_EQ(scalar_size(ScalarKind::kF32), 4u);
  EXPECT_STREQ(scalar_name(ScalarKind::kU16), "u16");
  EXPECT_EQ(scalar_kind_of<std::uint8_t>(), ScalarKind::kU8);
  EXPECT_EQ(scalar_kind_of<float>(), ScalarKind::kF32);
}

}  // namespace
}  // namespace oociso::core
