#include <gtest/gtest.h>

#include <cmath>

#include "compositing/sort_last.h"
#include "util/rng.h"

namespace oociso::compositing {
namespace {

using render::Framebuffer;
using render::Rgb;

/// Random framebuffer with a given coverage fraction.
Framebuffer random_frame(std::int32_t w, std::int32_t h, std::uint64_t seed,
                         double coverage = 0.5) {
  util::Xoshiro256 rng(seed);
  Framebuffer fb(w, h);
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) {
      if (rng.uniform() < coverage) {
        fb.plot(x, y, static_cast<float>(rng.uniform(1.0, 100.0)),
                {static_cast<std::uint8_t>(rng.bounded(256)),
                 static_cast<std::uint8_t>(rng.bounded(256)),
                 static_cast<std::uint8_t>(rng.bounded(256))});
      }
    }
  }
  return fb;
}

std::vector<Framebuffer> random_frames(std::size_t p, std::uint64_t seed) {
  std::vector<Framebuffer> frames;
  for (std::size_t i = 0; i < p; ++i) {
    frames.push_back(random_frame(32, 24, seed + i));
  }
  return frames;
}

bool images_equal(const Framebuffer& a, const Framebuffer& b) {
  if (a.width() != b.width() || a.height() != b.height()) return false;
  for (std::int32_t y = 0; y < a.height(); ++y) {
    for (std::int32_t x = 0; x < a.width(); ++x) {
      if (a.color_at(x, y) != b.color_at(x, y)) return false;
      const float da = a.depth_at(x, y);
      const float db = b.depth_at(x, y);
      if (da != db && !(std::isinf(da) && std::isinf(db))) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------

TEST(DirectSend, SingleNodeIsIdentity) {
  auto frames = random_frames(1, 10);
  const CompositeResult result = direct_send(frames);
  EXPECT_TRUE(images_equal(result.image, frames[0]));
  EXPECT_EQ(result.traffic.bytes_total, 0u);
  EXPECT_EQ(result.traffic.rounds, 0u);
}

TEST(DirectSend, MergesByDepth) {
  std::vector<Framebuffer> frames;
  frames.emplace_back(2, 1);
  frames.emplace_back(2, 1);
  frames[0].plot(0, 0, 5.0f, {255, 0, 0});
  frames[1].plot(0, 0, 3.0f, {0, 255, 0});  // nearer
  frames[1].plot(1, 0, 9.0f, {0, 0, 255});
  const CompositeResult result = direct_send(frames);
  EXPECT_EQ(result.image.color_at(0, 0), (Rgb{0, 255, 0}));
  EXPECT_EQ(result.image.color_at(1, 0), (Rgb{0, 0, 255}));
}

TEST(DirectSend, TrafficScalesWithNodes) {
  const auto frames = random_frames(4, 20);
  const CompositeResult result = direct_send(frames);
  const std::uint64_t per_buffer =
      frames[0].pixel_count() * Framebuffer::bytes_per_pixel();
  EXPECT_EQ(result.traffic.bytes_total, 3 * per_buffer);
  EXPECT_EQ(result.traffic.messages, 3u);
}

class BinarySwapEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinarySwapEquivalence, MatchesDirectSend) {
  const std::size_t p = GetParam();
  const auto frames = random_frames(p, 100 + p);
  const CompositeResult reference = direct_send(frames);
  const CompositeResult swapped = binary_swap(frames);
  EXPECT_TRUE(images_equal(reference.image, swapped.image)) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(PSweep, BinarySwapEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16),
                         [](const auto& param_info) {
                           return "p" + std::to_string(param_info.param);
                         });

TEST(BinarySwap, PerNodeTrafficIsBounded) {
  // The point of binary swap: the heaviest node moves ~2 buffers' worth of
  // bytes regardless of p, versus (p-1) buffers for direct send's display
  // node.
  const auto frames = random_frames(8, 42);
  const std::uint64_t per_buffer =
      frames[0].pixel_count() * Framebuffer::bytes_per_pixel();

  const CompositeResult swapped = binary_swap(frames);
  EXPECT_LE(swapped.traffic.max_node_bytes, 3 * per_buffer);

  const CompositeResult direct = direct_send(frames);
  EXPECT_EQ(direct.traffic.max_node_bytes, 7 * per_buffer);
  EXPECT_LT(swapped.traffic.max_node_bytes, direct.traffic.max_node_bytes);
}

TEST(BinarySwap, RoundsAreLogarithmic) {
  const auto frames = random_frames(8, 77);
  const CompositeResult result = binary_swap(frames);
  EXPECT_EQ(result.traffic.rounds, 4u);  // 3 swap stages + gather
}

TEST(BinarySwap, EmptyCoverageStaysEmpty) {
  std::vector<Framebuffer> frames;
  for (int i = 0; i < 4; ++i) frames.emplace_back(16, 16);
  const CompositeResult result = binary_swap(frames);
  EXPECT_EQ(result.image.covered_pixels(), 0u);
}

TEST(Compositing, RejectsEmptyAndMismatched) {
  EXPECT_THROW(direct_send({}), std::invalid_argument);
  EXPECT_THROW(binary_swap({}), std::invalid_argument);
  std::vector<Framebuffer> mismatched;
  mismatched.emplace_back(4, 4);
  mismatched.emplace_back(5, 4);
  EXPECT_THROW(direct_send(mismatched), std::invalid_argument);
  EXPECT_THROW(binary_swap(mismatched), std::invalid_argument);
}

}  // namespace
}  // namespace oociso::compositing
