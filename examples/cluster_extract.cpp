// Cluster extraction demo — the paper's Figure 4 scenario.
//
// Preprocesses one time step of the RM-analog dataset onto the local disks
// of a simulated 8-node visualization cluster, extracts the isosurface for
// a chosen isovalue in parallel (each node reading only its own stripe),
// renders per node, sort-last composites the framebuffers, and writes the
// final image. Prints the per-node work table.
//
// Run:  ./cluster_extract [--iso 190] [--step 250] [--nodes 8]
//                         [--dims 256] [--image 768] [--out .]
//                         [--wall 2x2]   (also emit per-projector tiles)

#include <filesystem>
#include <iostream>

#include "compositing/tiled_display.h"
#include "data/rm_generator.h"
#include "metacell/source.h"
#include "pipeline/query_engine.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/temp_dir.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto isovalue = static_cast<float>(args.get_double("iso", 190.0));
  const int step = static_cast<int>(args.get_int("step", 250));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 8));
  const auto dims = static_cast<std::int32_t>(args.get_int("dims", 256));
  const auto image = static_cast<std::int32_t>(args.get_int("image", 768));
  const std::string out_dir = args.get("out", ".");

  // Synthesize the RM-analog time step (paper: down-sampled step 250).
  data::RmConfig rm;
  rm.dims = {dims, dims, dims * 15 / 16};
  std::cout << "generating RM-analog " << rm.dims << " at step " << step
            << "...\n";
  const core::VolumeU8 volume = data::generate_rm_timestep(rm, step);

  // An 8-node cluster, each node with its own file-backed local disk.
  util::TempDir storage("oociso-cluster");
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = nodes;
  cluster_config.storage_dir = storage.path();
  parallel::Cluster cluster(cluster_config);

  const auto source = metacell::make_source(volume, 9);
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  std::cout << "preprocessed: " << util::with_commas(prep.kept_metacells)
            << " metacells (" << util::fixed(100 * prep.culled_fraction(), 1)
            << "% culled), " << util::human_bytes(prep.bytes_written)
            << " striped over " << nodes << " disks, index "
            << util::human_bytes(prep.index_bytes()) << " total in-core\n";

  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.image_width = image;
  options.image_height = image;
  options.keep_image = true;
  const pipeline::QueryReport report = engine.run(isovalue, options);

  util::Table table({"node", "active MC", "triangles", "I/O (s)",
                     "triangulate (s)", "render (s)"});
  for (std::size_t i = 0; i < report.nodes.size(); ++i) {
    const auto& node = report.nodes[i];
    table.add_row({std::to_string(i), util::with_commas(node.active_metacells),
                   util::with_commas(node.triangles),
                   util::fixed(node.io_model_seconds, 3),
                   util::fixed(node.triangulation_seconds, 3),
                   util::fixed(node.rendering_seconds, 3)});
  }
  std::cout << table.render();

  std::vector<std::uint64_t> triangle_counts;
  for (const auto& node : report.nodes) triangle_counts.push_back(node.triangles);
  std::cout << "isovalue " << isovalue << ": "
            << util::with_commas(report.total_triangles()) << " triangles, "
            << util::fixed(100 * util::imbalance(triangle_counts), 2)
            << "% triangle imbalance, completion "
            << util::human_seconds(report.completion_seconds()) << " ("
            << util::fixed(report.mtri_per_second(), 2) << " MTri/s), composite "
            << util::human_bytes(report.composite_traffic.bytes_total)
            << " over " << report.composite_traffic.rounds << " rounds\n";

  const auto ppm = std::filesystem::path(out_dir) / "cluster_extract.ppm";
  report.image->write_ppm(ppm);
  std::cout << "wrote " << ppm.string() << "\n";

  // Optional display wall: route the (single-node) composited frame as if
  // the render nodes shipped regions straight to projector tiles.
  if (args.has("wall")) {
    const std::string wall = args.get("wall", "2x2");
    const auto split = wall.find('x');
    const compositing::TileLayout layout{
        std::max(1, std::stoi(wall.substr(0, split))),
        std::max(1, std::stoi(wall.substr(split + 1)))};
    const std::vector<render::Framebuffer> as_nodes{*report.image};
    const compositing::TiledDisplayResult tiled =
        compositing::composite_to_tiles(as_nodes, layout);
    for (std::int32_t t = 0; t < layout.tile_count(); ++t) {
      const auto tile_path = std::filesystem::path(out_dir) /
                             ("wall_tile" + std::to_string(t) + ".ppm");
      tiled.tiles[static_cast<std::size_t>(t)].write_ppm(tile_path);
    }
    std::cout << "wrote " << layout.tile_count() << " projector tiles ("
              << wall << " wall), routed "
              << util::human_bytes(tiled.traffic.bytes_total) << "\n";
  }
  return 0;
}
