// Time-varying exploration demo (paper Section 5.2 / Table 8 workflow).
//
// Preprocesses a window of RM-analog time steps onto a 4-node cluster —
// one compact interval tree per step, all of them resident in core — then
// "explores": sweeps time at a fixed isovalue and sweeps isovalue at a
// fixed step, printing the interactive-query cost of each frame.
//
// Run:  ./timevarying_explorer [--first 180] [--steps 8] [--iso 70]
//                              [--dims 128] [--nodes 4]

#include <iostream>

#include "data/rm_generator.h"
#include "pipeline/timevarying.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/temp_dir.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const int first = static_cast<int>(args.get_int("first", 180));
  const int steps = static_cast<int>(args.get_int("steps", 8));
  const auto isovalue = static_cast<float>(args.get_double("iso", 70.0));
  const auto dims = static_cast<std::int32_t>(args.get_int("dims", 128));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));

  data::RmConfig rm;
  rm.dims = {dims, dims, dims * 15 / 16};

  util::TempDir storage("oociso-tv");
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = nodes;
  cluster_config.storage_dir = storage.path();
  parallel::Cluster cluster(cluster_config);

  pipeline::TimeVaryingEngine engine(cluster, [&rm](int step) {
    return data::AnyVolume(data::generate_rm_timestep(rm, step));
  });

  std::cout << "preprocessing steps " << first << ".." << first + steps - 1
            << " of the RM-analog series at " << rm.dims << "...\n";
  util::WallTimer preprocess_timer;
  engine.preprocess_steps(first, steps);
  std::cout << "done in " << util::human_seconds(preprocess_timer.seconds())
            << "; all " << steps << " step indexes resident in core: "
            << util::human_bytes(engine.total_index_bytes()) << "\n\n";

  pipeline::QueryOptions options;
  options.image_width = 256;
  options.image_height = 256;

  // Sweep 1: fixed isovalue, advancing time (watching the mixing develop).
  util::Table time_sweep({"time step", "active MC", "triangles", "time",
                          "MTri/s"});
  time_sweep.set_caption("time sweep at isovalue " + util::fixed(isovalue, 0));
  for (int step = first; step < first + steps; ++step) {
    const auto report = engine.query(step, isovalue, options);
    time_sweep.add_row({std::to_string(step),
                        util::with_commas(report.total_active_metacells()),
                        util::with_commas(report.total_triangles()),
                        util::human_seconds(report.completion_seconds()),
                        util::fixed(report.mtri_per_second(), 2)});
  }
  std::cout << time_sweep.render() << "\n";

  // Sweep 2: fixed (final) step, varying isovalue.
  const int probe_step = first + steps - 1;
  util::Table iso_sweep({"isovalue", "active MC", "triangles", "time",
                         "MTri/s"});
  iso_sweep.set_caption("isovalue sweep at step " + std::to_string(probe_step));
  for (float probe = 40.0f; probe <= 220.0f; probe += 30.0f) {
    const auto report = engine.query(probe_step, probe, options);
    iso_sweep.add_row({util::fixed(probe, 0),
                       util::with_commas(report.total_active_metacells()),
                       util::with_commas(report.total_triangles()),
                       util::human_seconds(report.completion_seconds()),
                       util::fixed(report.mtri_per_second(), 2)});
  }
  std::cout << iso_sweep.render();
  return 0;
}
