// Index inspector — a tour of the indexing structures on any built-in
// dataset. Prints the span-space population, the compact interval tree's
// shape (nodes, height, bricks, entries, bytes), the standard interval
// tree and lattice for comparison, and a worked example of one query plan
// (which bricks Case 1/Case 2 touch and why).
//
// Run:  ./index_inspector [--dataset rm|bunny|mrbrain|cthead|pressure|velocity]
//                         [--downscale 8] [--iso 128]

#include <iostream>
#include <set>

#include "data/datasets.h"
#include "index/compact_interval_tree.h"
#include "index/interval_tree.h"
#include "index/span_analysis.h"
#include "index/span_space_lattice.h"
#include "io/memory_block_device.h"
#include "metacell/source.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const std::string name = args.get("dataset", "rm");
  const auto downscale = static_cast<std::int32_t>(args.get_int("downscale", 8));
  const auto isovalue = static_cast<float>(args.get_double("iso", 128.0));

  const data::AnyVolume volume = data::make_dataset(name, downscale);
  const auto source = metacell::make_source(volume, 9);
  const auto infos = source->scan();
  std::cout << "dataset '" << name << "' " << data::dims_of(volume) << " "
            << core::scalar_name(source->kind()) << ": "
            << util::with_commas(source->geometry().metacell_count())
            << " metacells, " << util::with_commas(infos.size())
            << " non-degenerate\n\n";

  // Span-space population: where do the (vmin, vmax) points sit?
  std::set<core::ValueKey> endpoints;
  util::RunningStats widths;
  for (const auto& info : infos) {
    endpoints.insert(info.interval.vmin);
    endpoints.insert(info.interval.vmax);
    widths.add(info.interval.vmax - info.interval.vmin);
  }
  std::cout << "span space: n = " << endpoints.size()
            << " distinct endpoints; interval width mean "
            << util::fixed(widths.mean(), 1) << ", max "
            << util::fixed(widths.max(), 0) << "\n\n";

  // Build all three structures.
  io::MemoryBlockDevice device(4096);
  io::BlockDevice* device_ptr = &device;
  const auto built =
      index::CompactTreeBuilder::build(infos, *source, {&device_ptr, 1});
  const index::CompactIntervalTree& compact = built.trees[0];
  const index::IntervalTree standard(infos);
  const index::SpanSpaceLattice lattice(infos, 64);

  util::Table sizes({"structure", "entries", "in-core bytes", "height"});
  sizes.add_row({"compact interval tree",
                 util::with_commas(compact.entry_count()),
                 util::human_bytes(compact.size_bytes()),
                 std::to_string(compact.height())});
  sizes.add_row({"standard interval tree",
                 util::with_commas(standard.entry_count()),
                 util::human_bytes(standard.size_bytes()),
                 std::to_string(standard.height())});
  sizes.add_row({"span-space lattice (64x64)", "-",
                 util::human_bytes(lattice.size_bytes()), "-"});
  std::cout << sizes.render() << "\n";

  std::cout << "compact tree: " << compact.nodes().size() << " nodes, "
            << util::with_commas(built.bricks_written) << " bricks, "
            << util::human_bytes(built.bytes_written)
            << " of brick data on disk\n\n";

  // Worked query plan.
  const index::QueryPlan plan = compact.plan(isovalue);
  std::uint64_t full = 0;
  std::uint64_t prefix = 0;
  std::uint64_t full_cells = 0;
  for (const auto& scan : plan.scans) {
    if (scan.full) {
      ++full;
      full_cells += scan.metacell_count;
    } else {
      ++prefix;
    }
  }
  std::cout << "query plan for isovalue " << isovalue << ": walks "
            << plan.nodes_visited << " tree nodes; " << full
            << " Case-1 bricks read fully (" << util::with_commas(full_cells)
            << " metacells, bulk sequential) and " << prefix
            << " Case-2 bricks prefix-scanned in vmin order\n";

  device.reset_stats();
  std::uint64_t active = 0;
  const index::QueryStats stats =
      compact.execute(plan, device, [&](auto) { ++active; });
  std::cout << "executed: " << util::with_commas(active)
            << " active metacells delivered, "
            << util::with_commas(stats.records_fetched - active)
            << " records of overshoot, " << device.stats().blocks_read
            << " blocks / " << device.stats().seeks << " seeks\n";

  // Span-profile-driven exploration hints.
  const index::SpanProfile profile(infos, 256);
  std::cout << "\nsuggested isovalues:";
  for (const auto suggestion : profile.suggest_isovalues(4)) {
    std::cout << "  " << util::fixed(suggestion, 1) << " (~"
              << util::with_commas(profile.active_estimate(suggestion))
              << " active)";
  }
  std::cout << "\n\n";

  // Cross-check all three structures agree.
  const auto standard_ids = standard.query(isovalue);
  const auto lattice_ids = lattice.query(isovalue);
  std::cout << "cross-check: standard tree " << standard_ids.size()
            << ", lattice " << lattice_ids.size() << ", compact " << active
            << (standard_ids.size() == active && lattice_ids.size() == active
                    ? "  [agree]"
                    : "  [MISMATCH]")
            << "\n";
  return 0;
}
