// Unstructured-grid demo: the paper's claim that the indexing scheme
// "can handle both structured and unstructured grids", exercised end to
// end. A jittered tetrahedral mesh with an RM-like mixing field is
// clustered (Morton order), indexed with compact interval trees, striped
// over a simulated cluster's disks, and queried in parallel with marching
// tetrahedra; the welded result is written as an indexed OBJ with normals.
//
// Run:  ./unstructured_demo [--cells 24] [--iso 124] [--nodes 4] [--out .]

#include <filesystem>
#include <iostream>

#include "extract/indexed_mesh.h"
#include "unstructured/pipeline.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/temp_dir.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto cells = static_cast<std::int32_t>(args.get_int("cells", 24));
  const auto isovalue = static_cast<float>(args.get_double("iso", 124.0));
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  const std::string out_dir = args.get("out", ".");

  unstructured::TetGridConfig mesh_config;
  mesh_config.cells = cells;
  std::cout << "building jittered tet mesh: " << cells << "^3 cells x 5 tets"
            << "...\n";
  const unstructured::TetMesh mesh =
      make_tet_mesh(mesh_config, unstructured::TetField::kMixing);
  std::cout << "mesh: " << util::with_commas(mesh.tet_count()) << " tets, "
            << util::with_commas(mesh.vertices().size()) << " vertices\n";

  util::TempDir storage("oociso-tets");
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = nodes;
  cluster_config.storage_dir = storage.path();
  parallel::Cluster cluster(cluster_config);

  const unstructured::TetPreprocessResult prep =
      unstructured::preprocess_tets(mesh, cluster);
  std::cout << "preprocess: " << util::with_commas(prep.kept_clusters)
            << " of " << util::with_commas(prep.total_clusters)
            << " clusters kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1) << "% culled), "
            << util::human_bytes(prep.bytes_written) << " striped over "
            << nodes << " disks\n";

  unstructured::TetQueryOptions options;
  options.keep_triangles = true;
  const unstructured::TetQueryReport report =
      unstructured::query_tets(cluster, prep, isovalue, options);

  std::vector<std::uint64_t> per_node;
  for (const auto& node : report.nodes) per_node.push_back(node.triangles);
  std::cout << "query iso=" << isovalue << ": "
            << util::with_commas(report.total_active_clusters())
            << " active clusters, "
            << util::with_commas(report.total_triangles()) << " triangles, "
            << util::fixed(100.0 * util::imbalance(per_node), 2)
            << "% triangle imbalance, "
            << util::human_seconds(report.completion_seconds())
            << " modeled completion\n";

  const extract::IndexedMesh welded =
      extract::IndexedMesh::weld(*report.triangles_out);
  std::cout << "welded: " << util::with_commas(welded.vertex_count())
            << " shared vertices, " << welded.connected_components()
            << " components, closed=" << (welded.is_closed() ? "yes" : "no")
            << "\n";

  const auto obj = std::filesystem::path(out_dir) / "unstructured_demo.obj";
  welded.write_obj(obj);
  std::cout << "wrote " << obj.string() << "\n";
  return 0;
}
