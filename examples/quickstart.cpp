// Quickstart: the whole oociso pipeline in ~60 lines.
//
//   1. Generate a small synthetic volume (concentric-spheres field).
//   2. Preprocess it: metacells -> compact interval tree -> bricks on a
//      single-node "cluster" (one local disk).
//   3. Query an isovalue: out-of-core retrieval + marching cubes + render.
//   4. Write the surface as OBJ and the rendered image as PPM.
//
// Run:  ./quickstart [--iso 128] [--size 64] [--out /tmp]

#include <iostream>

#include "data/analytic_fields.h"
#include "extract/mesh.h"
#include "metacell/source.h"
#include "pipeline/query_engine.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/temp_dir.h"

int main(int argc, char** argv) {
  using namespace oociso;
  const util::CliArgs args(argc, argv);
  const auto isovalue = static_cast<float>(args.get_double("iso", 128.0));
  const auto size = static_cast<std::int32_t>(args.get_int("size", 64));
  const std::string out_dir = args.get("out", ".");

  // 1. A synthetic scalar field whose isosurfaces are spheres.
  core::VolumeU8 volume = data::make_sphere_field({size, size, size});
  std::cout << "volume: " << volume.dims() << " u8 ("
            << util::human_bytes(volume.sample_count()) << ")\n";

  // 2. Preprocess onto one local disk (kept in a temp directory).
  util::TempDir storage("oociso-quickstart");
  parallel::ClusterConfig cluster_config;
  cluster_config.node_count = 1;
  cluster_config.storage_dir = storage.path();
  parallel::Cluster cluster(cluster_config);

  const auto source = metacell::make_source(std::move(volume), /*k=*/9);
  const pipeline::PreprocessResult prep = pipeline::preprocess(*source, cluster);
  std::cout << "preprocess: " << prep.kept_metacells << " of "
            << prep.total_metacells << " metacells kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1)
            << "% culled), index "
            << util::human_bytes(prep.index_bytes()) << ", bricks "
            << util::human_bytes(prep.bytes_written) << "\n";

  // 3. Out-of-core isosurface query.
  pipeline::QueryEngine engine(cluster, prep);
  pipeline::QueryOptions options;
  options.keep_triangles = true;
  options.keep_image = true;
  const pipeline::QueryReport report = engine.run(isovalue, options);

  std::cout << "query iso=" << isovalue << ": "
            << report.total_active_metacells() << " active metacells, "
            << report.total_triangles() << " triangles, "
            << util::human_seconds(report.completion_seconds())
            << " modeled completion, "
            << util::fixed(report.mtri_per_second(), 2) << " MTri/s\n";

  // 4. Outputs.
  const auto obj_path = std::filesystem::path(out_dir) / "quickstart.obj";
  const auto ppm_path = std::filesystem::path(out_dir) / "quickstart.ppm";
  extract::write_obj(*report.triangles_out, obj_path);
  report.image->write_ppm(ppm_path);
  std::cout << "wrote " << obj_path.string() << " and " << ppm_path.string()
            << "\n";
  return 0;
}
