// oociso command-line tool: generate / preprocess / query / info.
//
//   oociso generate   --dataset rm --step 250 --dims 128 --out vol.oocv
//   oociso preprocess --volume vol.oocv --storage ./store --nodes 4 [--ooc]
//   oociso query      --storage ./store --nodes 4 --iso 190
//                     [--obj surface.obj] [--image frame.ppm] [--weld]
//   oociso serve      --storage ./store --nodes 4 --isos 120,150,190
//                     [--repeat 2] [--concurrency 4] [--cache-blocks 4096]
//   oociso info       --storage ./store
//
// `preprocess` writes the striped brick files plus a bundle (index.oocb)
// under the storage directory; `query` and `info` reattach to it, so the
// expensive pass runs once per dataset.

#include <filesystem>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "data/datasets.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "data/raw_io.h"
#include "data/rm_generator.h"
#include "extract/indexed_mesh.h"
#include "extract/kernel.h"
#include "index/span_analysis.h"
#include "metacell/source.h"
#include "pipeline/bundle.h"
#include "pipeline/ooc_preprocess.h"
#include "pipeline/progressive.h"
#include "pipeline/query_engine.h"
#include "serve/query_server.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace oociso;

int usage() {
  std::cerr <<
      R"(usage: oociso <command> [flags]

commands:
  generate    synthesize a dataset volume file (.oocv)
                --dataset rm|bunny|mrbrain|cthead|pressure|velocity (rm)
                --dims N (128, rm only)  --step S (250, rm only)
                --seed X (42)  --downscale N (8, non-rm)  --out FILE
  preprocess  build the striped brick layout + index bundle
                --volume FILE  --storage DIR  --nodes P (4)
                --metacell K (9)  --ooc (stream; never load the volume)
                --replication K (1; copies of every placement group kept on
                rendezvous-chosen peer stores — queries route around dead
                holders brick-granularly when K > 1)
                --compression none|lz (none; lz writes index v4 with
                byte-shuffle + LZ chunks, decoded on fetch at query time —
                meshes stay bit-identical)
                --levels N (1; total resolution levels. N > 1 appends N-1
                coarse mip levels over the metacells and writes index v5
                for deadline-bounded progressive queries; --levels 1 stays
                byte-identical to earlier versions)
  query       run an isovalue query against a preprocessed storage dir
                --storage DIR  --nodes P (4)  --iso V (128)
                --obj FILE  --image FILE  --imagesize N (512)  --weld
                --readahead N (4, record batches prefetched per node)
                --queue-depth D (0 = synchronous reads; 1..1024 = async
                submission queue with D reads in flight per node)
                --no-coalesce (per-brick reads; disable the I/O scheduler)
                --coalesce-gap BYTES (largest coalesced-read gap bridged;
                -1 = device readahead window)
                --inject-faults SEED,RATE (deterministic transient read
                faults; retried with backoff, failed nodes fail over)
                --kernel auto|scalar|sse2|avx2 (auto; marching-cubes
                classification ISA — the mesh is bit-identical across
                kernels, only classify throughput differs)
                --trace FILE (Chrome trace_event JSON of the query)
                --metrics FILE (metrics-registry JSON snapshot)
                --progressive (refine coarsest level -> full resolution;
                needs an index preprocessed with --levels > 1. Implied by
                the three flags below)
                --deadline-ms MS (0 = none; best surface within MS — the
                coarsest level always completes, refinement stops at the
                deadline)
                --memory-budget BYTES (0 = none; bound on refinement batch
                bytes in flight across the nodes)
                --max-level L (0; stop refining once level L completes,
                0 = refine to the full-resolution mesh)
  serve       replay a list of isovalue queries concurrently through the
              shared per-node brick cache (cross-query read dedup)
                --storage DIR  --nodes P (4)  --isos V1,V2,...
                --repeat N (1; passes over the list — pass 2+ runs warm)
                --concurrency Q (4, queries admitted at once)
                --cache-blocks M (4096, per-node cache frames)
                --readahead N (4, record batches prefetched per node)
                --queue-depth D (0 = synchronous reads; 1..1024 = async
                submission queue with D reads in flight per node)
                --no-coalesce (per-brick reads; disable the I/O scheduler)
                --coalesce-gap BYTES (largest coalesced-read gap bridged;
                -1 = device readahead window)
                --inject-faults SEED,RATE (deterministic transient read
                faults, injected at the cluster level under the cache)
                --kernel auto|scalar|sse2|avx2 (auto; classification ISA
                for every admitted query)
                --trace FILE (Chrome trace_event JSON, one pid per query)
                --metrics FILE (metrics-registry JSON snapshot)
  info        print bundle statistics (index version, replication,
              compression codec, chunk counts, raw/encoded byte totals,
              hierarchy levels and coarse-brick bytes for v5 indexes)
                --storage DIR
  suggest     profile a volume's span space and suggest isovalues
                --volume FILE  --metacell K (9)  --count N (5)
)";
  return 2;
}

/// Parses --kernel and validates it against the host CPU up front: a
/// request for an ISA this machine cannot run is a usage error (exit 2),
/// not a runtime failure halfway into the query.
extract::KernelOptions parse_kernel_flag(const util::CliArgs& args) {
  const std::string name = args.get("kernel", "auto");
  extract::KernelOptions kernel;
  try {
    kernel.isa = extract::kernel::parse_isa(name);
  } catch (const std::invalid_argument&) {
    throw util::UsageError("unknown --kernel '" + name +
                           "' (auto|scalar|sse2|avx2)");
  }
  if (!extract::kernel::available(kernel.isa)) {
    throw util::UsageError(
        "--kernel " + std::string(extract::kernel::isa_name(kernel.isa)) +
        " is not supported by this CPU (use --kernel auto)");
  }
  return kernel;
}

parallel::Cluster open_cluster(const std::filesystem::path& storage,
                               std::size_t nodes, bool existing) {
  parallel::ClusterConfig config;
  config.node_count = nodes;
  config.storage_dir = storage;
  config.open_existing = existing;
  return parallel::Cluster(config);
}

int cmd_generate(const util::CliArgs& args) {
  args.require_known(
      {"dataset", "dims", "step", "seed", "downscale", "out"});
  const std::string dataset = args.get("dataset", "rm");
  const std::string out = args.get("out", dataset + ".oocv");

  data::AnyVolume volume = [&]() -> data::AnyVolume {
    if (dataset == "rm") {
      data::RmConfig config;
      const auto dims = static_cast<std::int32_t>(args.get_int("dims", 128));
      config.dims = {dims, dims, dims * 15 / 16};
      config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
      return data::generate_rm_timestep(
          config, static_cast<int>(args.get_int("step", 250)));
    }
    return data::make_dataset(
        dataset, static_cast<std::int32_t>(args.get_int("downscale", 8)));
  }();

  data::write_volume(volume, out);
  std::cout << "wrote " << out << ": " << data::dims_of(volume) << " "
            << core::scalar_name(data::kind_of(volume)) << "\n";
  return 0;
}

int cmd_preprocess(const util::CliArgs& args) {
  args.require_known({"volume", "storage", "nodes", "metacell", "ooc",
                      "replication", "compression", "levels"});
  const std::string volume_file = args.get("volume", "");
  const std::string storage = args.get("storage", "");
  if (volume_file.empty() || storage.empty()) return usage();
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  const auto k = static_cast<std::int32_t>(args.get_int("metacell", 9));
  const auto replication =
      static_cast<std::size_t>(args.get_int_in("replication", 1, 1, 64));
  if (replication > nodes) {
    std::cerr << "error: --replication " << replication << " exceeds --nodes "
              << nodes << "\n";
    return 1;
  }
  if (replication > 1 && args.get_bool("ooc", false)) {
    std::cerr << "error: --replication > 1 is not supported with --ooc yet; "
                 "preprocess in-core\n";
    return 1;
  }
  const std::string compression_name = args.get("compression", "none");
  codec::Codec compression = codec::Codec::kRaw;
  try {
    compression = codec::parse_codec(compression_name);
  } catch (const std::exception&) {
    std::cerr << "error: unknown --compression '" << compression_name
              << "' (none|lz)\n";
    return usage();
  }
  if (compression != codec::Codec::kRaw && args.get_bool("ooc", false)) {
    std::cerr << "error: --compression is not supported with --ooc yet; "
                 "preprocess in-core\n";
    return 1;
  }
  const auto levels =
      static_cast<std::int32_t>(args.get_int_in("levels", 1, 1, 16));
  if (levels > 1 && args.get_bool("ooc", false)) {
    std::cerr << "error: --levels > 1 is not supported with --ooc yet; "
                 "preprocess in-core\n";
    return 1;
  }

  std::filesystem::create_directories(storage);
  auto cluster = open_cluster(storage, nodes, /*existing=*/false);

  util::WallTimer timer;
  pipeline::PreprocessResult prep = [&] {
    if (args.get_bool("ooc", false)) {
      pipeline::OocPreprocessConfig config;
      config.samples_per_side = k;
      return pipeline::preprocess_out_of_core(
                 volume_file, cluster,
                 std::filesystem::path(storage) / "scratch", config)
          .result;
    }
    const auto source = metacell::make_source(data::read_volume(volume_file), k);
    pipeline::PreprocessConfig config;
    config.samples_per_side = k;
    config.placement.replication = replication;
    config.compression = compression;
    config.levels = levels;
    return pipeline::preprocess(*source, cluster, config);
  }();
  pipeline::save_bundle(prep, storage);

  std::cout << "preprocessed " << volume_file << " -> " << storage << " ("
            << nodes << " node disks) in " << util::human_seconds(timer.seconds())
            << "\n  metacells: " << util::with_commas(prep.kept_metacells)
            << " of " << util::with_commas(prep.total_metacells) << " kept ("
            << util::fixed(100.0 * prep.culled_fraction(), 1)
            << "% culled)\n  bricks: " << util::human_bytes(prep.bytes_written)
            << " (raw volume " << util::human_bytes(prep.raw_bytes)
            << ")\n  index: " << util::human_bytes(prep.index_bytes())
            << " in-core, saved to bundle\n";
  if (prep.replica_bytes_written > 0) {
    std::cout << "  replicas: " << util::human_bytes(prep.replica_bytes_written)
              << " (" << replication << "-way placement groups)\n";
  }
  if (compression != codec::Codec::kRaw) {
    const double ratio =
        prep.compressed_bytes_written > 0
            ? static_cast<double>(prep.bytes_written) /
                  static_cast<double>(prep.compressed_bytes_written)
            : 1.0;
    std::cout << "  compression: " << codec::codec_name(compression) << ", "
              << util::human_bytes(prep.compressed_bytes_written)
              << " encoded (" << util::fixed(ratio, 2) << "x)\n";
  }
  if (prep.hierarchy_levels() > 0) {
    std::cout << "  hierarchy: " << prep.hierarchy_levels()
              << " coarse level(s), "
              << util::with_commas(prep.hierarchy_nodes_written) << " nodes, "
              << util::human_bytes(prep.hierarchy_bytes_written) << "\n";
  }
  return 0;
}

int cmd_query(const util::CliArgs& args) {
  args.require_known({"storage", "nodes", "iso", "obj", "image", "imagesize",
                      "weld", "readahead", "queue-depth", "no-coalesce",
                      "coalesce-gap", "inject-faults", "kernel", "trace",
                      "metrics", "progressive", "deadline-ms",
                      "memory-budget", "max-level"});
  const std::string storage = args.get("storage", "");
  if (storage.empty()) return usage();
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  const auto isovalue = static_cast<float>(args.get_double("iso", 128.0));

  // Parse and validate every flag before opening storage, so a malformed
  // value is a usage error even when the storage path is also wrong.
  pipeline::QueryOptions options;
  options.image_width = options.image_height =
      static_cast<std::int32_t>(args.get_int("imagesize", 512));
  options.keep_image = args.has("image");
  options.keep_triangles = args.has("obj");
  options.render = options.keep_image;
  options.readahead_batches = static_cast<std::size_t>(
      args.get_int_in("readahead", 4, 0, 1 << 20));
  options.retrieval.queue_depth = static_cast<std::size_t>(
      args.get_int_in("queue-depth", 0, 0, 1024));
  options.retrieval.coalesce = !args.get_bool("no-coalesce", false);
  options.retrieval.coalesce_gap_bytes =
      args.get_int_in("coalesce-gap", -1, -1, std::int64_t{1} << 40);
  options.kernel = parse_kernel_flag(args);
  const std::string fault_spec = args.get("inject-faults", "");
  if (!fault_spec.empty()) {
    options.inject_faults = io::FaultConfig::parse(fault_spec);
  }
  options.deadline_ms = args.get_double("deadline-ms", 0.0);
  options.memory_budget_bytes = static_cast<std::uint64_t>(
      args.get_int_in("memory-budget", 0, 0, std::int64_t{1} << 40));
  options.max_level =
      static_cast<std::int32_t>(args.get_int_in("max-level", 0, 0, 64));
  const bool progressive =
      args.get_bool("progressive", false) || args.has("deadline-ms") ||
      args.has("memory-budget") || args.has("max-level");

  auto cluster = open_cluster(storage, nodes, /*existing=*/true);
  const pipeline::PreprocessResult prep = pipeline::load_bundle(storage);
  if (prep.trees.size() != nodes) {
    std::cerr << "error: bundle was preprocessed for " << prep.trees.size()
              << " nodes; pass --nodes " << prep.trees.size() << "\n";
    return 1;
  }
  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  if (!trace_path.empty()) {
    options.tracer = &tracer;
    options.query_id = 1;
    tracer.name_process(1, "query iso=" + std::to_string(isovalue));
  }
  if (!metrics_path.empty()) {
    options.metrics = &registry;
    cluster.attach_metrics(registry);
  }

  if (progressive) {
    pipeline::ProgressiveEngine engine(cluster, prep);
    const pipeline::ProgressiveReport report = engine.run(isovalue, options);
    const auto hex_crc = [](std::uint32_t crc) {
      std::ostringstream out;
      out << "0x" << std::hex << std::setw(8) << std::setfill('0') << crc;
      return out.str();
    };
    util::Table table(
        {"level", "active", "triangles", "read_ops", "elapsed", "mesh crc"});
    for (const pipeline::LevelReport& level : report.levels) {
      table.add_row({std::to_string(level.level),
                     util::with_commas(level.active_metacells),
                     util::with_commas(level.triangles),
                     util::with_commas(level.io.read_ops),
                     util::human_seconds(level.elapsed_ms / 1000.0),
                     hex_crc(level.mesh_crc)});
    }
    std::cout << table.render();
    std::cout << "progressive isovalue " << isovalue << ": refined to level "
              << report.finest_level_completed
              << (report.deadline_expired ? " (deadline expired)" : "")
              << (report.cancelled ? " (cancelled)" : "") << ", peak batch "
              << util::human_bytes(report.peak_batch_bytes) << "\n";
    if (!trace_path.empty()) {
      tracer.write(trace_path);
      std::cout << "wrote " << trace_path << " (" << tracer.event_count()
                << " trace events)\n";
    }
    if (!metrics_path.empty()) {
      registry.save(metrics_path);
      std::cout << "wrote " << metrics_path << "\n";
    }
    if (args.has("obj") && !report.mesh.empty()) {
      const std::string obj = args.get("obj", "surface.obj");
      extract::write_obj(report.mesh, obj);
      std::cout << "wrote " << obj << " (level "
                << report.finest_level_completed << " triangle soup)\n";
    }
    return 0;
  }

  pipeline::QueryEngine engine(cluster, prep);
  const pipeline::QueryReport report = engine.run(isovalue, options);
  if (!trace_path.empty()) {
    tracer.write(trace_path);
    std::cout << "wrote " << trace_path << " (" << tracer.event_count()
              << " trace events)\n";
  }
  if (!metrics_path.empty()) {
    registry.save(metrics_path);
    std::cout << "wrote " << metrics_path << "\n";
  }
  std::cout << "isovalue " << isovalue << ": "
            << util::with_commas(report.total_active_metacells())
            << " active metacells, "
            << util::with_commas(report.total_triangles()) << " triangles, "
            << util::human_seconds(report.completion_seconds())
            << " modeled completion ("
            << util::fixed(report.mtri_per_second(), 2) << " MTri/s)\n";
  if (!fault_spec.empty() || report.degraded) {
    const index::RetrievalFaults faults = report.total_retrieval_faults();
    std::cout << "faults: " << faults.transient_errors << " transient, "
              << faults.checksum_failures << " checksum, " << faults.retries
              << " retries (+"
              << util::human_seconds(faults.backoff_modeled_seconds)
              << " modeled backoff), " << report.total_failovers()
              << " failovers"
              << (report.degraded ? " — DEGRADED (peer takeover)" : "")
              << "\n";
    for (std::size_t i = 0; i < report.nodes.size(); ++i) {
      const pipeline::FaultReport& nf = report.nodes[i].faults;
      if (nf.error.empty()) continue;
      std::cout << "  node " << i << " failed (" << nf.error
                << "); stripe executed by node " << nf.executed_by << "\n";
    }
  }

  if (options.keep_triangles) {
    const std::string obj = args.get("obj", "surface.obj");
    if (args.get_bool("weld", false)) {
      const auto mesh = extract::IndexedMesh::weld(*report.triangles_out);
      mesh.write_obj(obj);
      std::cout << "wrote " << obj << " (" << util::with_commas(mesh.vertex_count())
                << " welded vertices, " << mesh.connected_components()
                << " components)\n";
    } else {
      extract::write_obj(*report.triangles_out, obj);
      std::cout << "wrote " << obj << " (triangle soup)\n";
    }
  }
  if (options.keep_image) {
    const std::string image = args.get("image", "frame.ppm");
    report.image->write_ppm(image);
    std::cout << "wrote " << image << "\n";
  }
  return 0;
}

int cmd_serve(const util::CliArgs& args) {
  args.require_known({"storage", "isos", "nodes", "repeat", "concurrency",
                      "cache-blocks", "readahead", "queue-depth",
                      "no-coalesce", "coalesce-gap", "inject-faults",
                      "kernel", "trace", "metrics"});
  const std::string storage = args.get("storage", "");
  const std::string iso_list = args.get("isos", "");
  if (storage.empty() || iso_list.empty()) return usage();
  const auto nodes = static_cast<std::size_t>(args.get_int("nodes", 4));
  const auto repeat = static_cast<int>(args.get_int("repeat", 1));

  std::vector<core::ValueKey> isovalues;
  std::size_t pos = 0;
  while (pos < iso_list.size()) {
    const std::size_t comma = iso_list.find(',', pos);
    const std::string token =
        iso_list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    isovalues.push_back(std::stof(token));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  // As in cmd_query: validate every flag before opening storage.
  serve::ServeOptions options;
  options.max_concurrent_queries =
      static_cast<std::size_t>(args.get_int("concurrency", 4));
  options.cache_capacity_blocks =
      static_cast<std::size_t>(args.get_int("cache-blocks", 4096));
  options.query.render = false;
  options.query.readahead_batches = static_cast<std::size_t>(
      args.get_int_in("readahead", 4, 0, 1 << 20));
  options.query.retrieval.queue_depth = static_cast<std::size_t>(
      args.get_int_in("queue-depth", 0, 0, 1024));
  options.query.retrieval.coalesce = !args.get_bool("no-coalesce", false);
  options.query.retrieval.coalesce_gap_bytes =
      args.get_int_in("coalesce-gap", -1, -1, std::int64_t{1} << 40);
  options.query.kernel = parse_kernel_flag(args);
  const std::string fault_spec = args.get("inject-faults", "");
  if (!fault_spec.empty()) {
    options.inject_faults = io::FaultConfig::parse(fault_spec);
  }

  const std::string trace_path = args.get("trace", "");
  const std::string metrics_path = args.get("metrics", "");
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  if (!trace_path.empty()) options.tracer = &tracer;
  if (!metrics_path.empty()) options.metrics = &registry;

  auto cluster = open_cluster(storage, nodes, /*existing=*/true);
  const pipeline::PreprocessResult prep = pipeline::load_bundle(storage);
  if (prep.trees.size() != nodes) {
    std::cerr << "error: bundle was preprocessed for " << prep.trees.size()
              << " nodes; pass --nodes " << prep.trees.size() << "\n";
    return 1;
  }

  serve::QueryServer server(cluster, prep, options);
  util::Table table({"pass", "iso", "triangles", "read_ops", "cache hit",
                     "miss", "wait"});
  for (int pass = 0; pass < repeat; ++pass) {
    const std::vector<pipeline::QueryReport> reports =
        server.serve(isovalues);
    for (const pipeline::QueryReport& report : reports) {
      std::uint64_t read_ops = 0;
      for (const auto& node : report.nodes) read_ops += node.io.read_ops;
      const io::CacheReadStats cache = report.total_cache();
      table.add_row({std::to_string(pass), util::fixed(report.isovalue, 1),
                     util::with_commas(report.total_triangles()),
                     util::with_commas(read_ops),
                     util::with_commas(cache.hit_blocks),
                     util::with_commas(cache.miss_blocks),
                     util::with_commas(cache.wait_blocks)});
    }
  }
  std::cout << table.render();

  const io::CacheCounters counters = server.cache_counters();
  std::cout << "cache: " << util::with_commas(counters.fetches)
            << " fetches = " << util::with_commas(counters.hits) << " hits + "
            << util::with_commas(counters.misses) << " misses + "
            << util::with_commas(counters.waits)
            << " waits (single-flight); " << util::with_commas(counters.evictions)
            << " evictions, peak " << server.peak_in_flight()
            << " queries in flight\n";
  if (!fault_spec.empty()) {
    std::uint64_t transients = 0;
    std::uint64_t corruptions = 0;
    for (std::size_t node = 0; node < cluster.size(); ++node) {
      if (const io::InjectedFaults* injected = cluster.cache_injected(node)) {
        transients += injected->read_failures;
        corruptions += injected->corrupted_reads;
      }
    }
    std::cout << "faults injected under the cache: " << transients
              << " transient, " << corruptions << " corrupted\n";
  }
  if (!trace_path.empty()) {
    tracer.write(trace_path);
    std::cout << "wrote " << trace_path << " (" << tracer.event_count()
              << " trace events)\n";
  }
  if (!metrics_path.empty()) {
    registry.save(metrics_path);
    std::cout << "wrote " << metrics_path << "\n";
  }
  return 0;
}

int cmd_info(const util::CliArgs& args) {
  args.require_known({"storage"});
  const std::string storage = args.get("storage", "");
  if (storage.empty()) return usage();
  const pipeline::PreprocessResult prep = pipeline::load_bundle(storage);

  util::Table table({"property", "value"});
  table.set_align(0, util::Align::kLeft);
  table.set_align(1, util::Align::kLeft);
  std::ostringstream dims;
  dims << prep.geometry.volume_dims();
  std::ostringstream mdims;
  mdims << prep.geometry.metacell_dims();
  table.add_row({"volume", dims.str() + " " + core::scalar_name(prep.kind)});
  table.add_row({"metacells", mdims.str() + " of " +
                                  std::to_string(prep.geometry.samples_per_side()) +
                                  "^3 samples"});
  table.add_row({"kept", util::with_commas(prep.kept_metacells) + " of " +
                             util::with_commas(prep.total_metacells) + " (" +
                             util::fixed(100.0 * prep.culled_fraction(), 1) +
                             "% culled)"});
  table.add_row({"bricks on disk", util::human_bytes(prep.bytes_written)});
  table.add_row({"node count", std::to_string(prep.trees.size())});
  table.add_row({"index in-core", util::human_bytes(prep.index_bytes())});
  if (!prep.trees.empty()) {
    const index::CompactIntervalTree& first = prep.trees.front();
    std::uint64_t chunks = 0;
    std::uint64_t raw_bytes = 0;
    std::uint64_t encoded_bytes = 0;
    for (const auto& tree : prep.trees) {
      chunks += tree.chunk_crcs().size();
      raw_bytes += tree.raw_payload_bytes();
      encoded_bytes += tree.compressed_payload_bytes();
    }
    table.add_row({"index version", std::to_string(first.format_version())});
    table.add_row({"replication", std::to_string(first.replication())});
    table.add_row({"compression", std::string(codec::codec_name(first.codec()))});
    table.add_row({"chunks", util::with_commas(chunks)});
    table.add_row({"raw payload", util::human_bytes(raw_bytes)});
    if (first.compressed()) {
      const double ratio = encoded_bytes > 0
                               ? static_cast<double>(raw_bytes) /
                                     static_cast<double>(encoded_bytes)
                               : 1.0;
      table.add_row({"encoded payload", util::human_bytes(encoded_bytes) +
                                            " (" + util::fixed(ratio, 2) +
                                            "x)"});
    }
    // v5 only: the rows below never appear for a flat (v2/v3/v4) bundle,
    // keeping earlier versions' output byte-identical.
    if (first.hierarchy_levels() > 0) {
      std::uint64_t coarse_bytes = 0;
      for (const auto& tree : prep.trees) {
        coarse_bytes += tree.hierarchy_payload_bytes();
      }
      table.add_row(
          {"hierarchy levels", std::to_string(first.hierarchy_levels())});
      for (std::size_t l = 0; l < first.hierarchy_levels(); ++l) {
        std::uint64_t level_nodes = 0;
        for (const auto& tree : prep.trees) {
          level_nodes += tree.hierarchy()[l].entries.size();
        }
        table.add_row(
            {"  level " + std::to_string(first.hierarchy()[l].level),
             util::with_commas(level_nodes) + " coarse nodes"});
      }
      table.add_row({"coarse payload", util::human_bytes(coarse_bytes)});
    }
  }
  for (std::size_t i = 0; i < prep.trees.size(); ++i) {
    table.add_row({"  node " + std::to_string(i),
                   util::with_commas(prep.trees[i].entry_count()) +
                       " brick entries, " +
                       util::with_commas(prep.trees[i].total_metacells()) +
                       " metacells"});
  }
  std::cout << table.render();
  return 0;
}

int cmd_suggest(const util::CliArgs& args) {
  args.require_known({"volume", "metacell", "count"});
  const std::string volume_file = args.get("volume", "");
  if (volume_file.empty()) return usage();
  const auto k = static_cast<std::int32_t>(args.get_int("metacell", 9));
  const auto count = static_cast<std::uint32_t>(args.get_int("count", 5));

  const auto source = metacell::make_source(data::read_volume(volume_file), k);
  const auto infos = source->scan();
  const index::SpanProfile profile(infos, 256);

  // Coarse activity histogram as a text sparkline.
  const auto& counts = profile.counts();
  std::uint64_t peak = 1;
  for (const auto c : counts) peak = std::max(peak, c);
  std::cout << "span-space activity over [" << profile.lo() << ", "
            << profile.hi() << "] (" << util::with_commas(infos.size())
            << " metacells):\n";
  static constexpr const char* kBars[] = {" ", ".", ":", "-", "=", "+",
                                          "*", "#"};
  std::cout << "  ";
  for (std::size_t b = 0; b < counts.size(); b += 4) {
    const auto level = static_cast<std::size_t>(
        counts[b] * 7 / peak);
    std::cout << kBars[level];
  }
  std::cout << "\n\nsuggested isovalues (distinct activity peaks):\n";
  for (const auto isovalue : profile.suggest_isovalues(count)) {
    std::cout << "  " << util::fixed(isovalue, 1) << "  (~"
              << util::with_commas(profile.active_estimate(isovalue))
              << " active metacells)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::CliArgs args(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "preprocess") return cmd_preprocess(args);
    if (command == "query") return cmd_query(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "info") return cmd_info(args);
    if (command == "suggest") return cmd_suggest(args);
  } catch (const util::UsageError& error) {
    std::cerr << "error: " << error.what() << "\n";
    return usage();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}
